// Package wire moves RingNet protocol messages over real UDP sockets —
// the step from event-driven simulation to real-time execution. The
// pieces compose bottom-up:
//
//   - frame.go:     datagram framing on top of internal/msg's binary codec
//     (group-tagged sections of protocol messages batched per
//     datagram, with per-peer datagram sequencing for
//     loss/reorder stats);
//   - transport.go: the UDP transport — one socket shared by every group a
//     daemon hosts, a group-refcounted peer table, per-peer and
//     per-group counters, group demultiplexing of inbound
//     sections, an optional deterministic loss/jitter injector
//     at the socket layer, clean shutdown;
//   - driver.go:    a real-time executor for the deterministic sim
//     scheduler, so the unmodified protocol core (its RTO
//     timers, τ ticks, ack-delay timers) runs against the
//     wall clock;
//   - outbox.go:    the daemon-wide per-peer batching outbox: outbound
//     traffic from every hosted group coalesces into shared
//     multi-section datagrams, so N groups do not mean N×
//     the datagrams;
//   - bridge.go:    the splice between one group's internal/core instance
//     and the shared outbox — remote ring members appear as
//     forwarding endpoints on the group's netsim substrate;
//   - config.go:    the groups-first daemon config (schema v2) and the
//     legacy single-group shim;
//   - report.go:    the per-group + daemon-aggregate status report
//     (schema v2);
//   - group.go:     one hosted ring group: engine, driver, bridge,
//     membership plane, workload, and convergence barrier;
//   - daemon.go:    the federation orchestrator for cmd/ringnetd and the
//     multi-process harness: one transport + clock-sync per
//     process, N groups demuxed over it.
//
// The paper's local-scope retransmission machinery (transport.Sender,
// couriers, Nack repair, token recovery) is reused as-is: the simulator's
// network is reduced to a zero-latency in-process dispatch layer and the
// real network supplies latency, jitter, loss, and reordering.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/msg"
	"repro/internal/seq"
)

// Datagram framing, version 2: a fixed header followed by group-tagged
// sections, each carrying length-prefixed encoded messages. Putting the
// group id in a per-section tag rather than the frame header is what
// lets one datagram carry traffic for many groups at once — the shared
// outbox coalesces every group's backlog for a peer into one socket
// write. Little-endian, like the message codec.
//
//	magic    u16  0x524E ("RN")
//	version  u8   2
//	sections u8   section count (≥ 1)
//	from     u32  sender NodeID
//	seqno    u64  per-(sender→receiver) datagram sequence number
//	sections × {
//	    group  u32  destination group id (0 = transport-internal)
//	    flags  u8   group-level control bits (FlagDone, ...)
//	    count  u8   messages in this section (0 allowed only when flags≠0)
//	    count × { len u32, len bytes of msg.Encode output }
//	}
const (
	frameMagic   = 0x524E
	frameVersion = 2
	headerSize   = 2 + 1 + 1 + 4 + 8

	// sectionOverhead is the per-section tag: group u32, flags u8,
	// count u8.
	sectionOverhead = 4 + 1 + 1

	// MaxDatagram is the default frame-size budget: safely under the
	// 65507-byte UDP payload ceiling, with headroom for the header.
	MaxDatagram = 60000

	// maxFrameMsgs is the per-section message cap imposed by the u8
	// count field; maxFrameSections is the per-datagram section cap
	// imposed by the u8 section count.
	maxFrameMsgs     = 255
	maxFrameSections = 255
)

// GroupControl is the reserved group id 0: sections tagged with it carry
// transport-internal traffic (clock sync) and never reach a protocol
// instance.
const GroupControl uint32 = 0

// Frame-level control flags: daemon-to-daemon signals that ride the
// transport without entering the protocol core. Flags are per-section,
// so they are scoped to one group.
const (
	// FlagDone gossips "this member has delivered everything it
	// expects in this group". Exiting a ring is only safe once every
	// member is done: gap repair (Nack) is pull-based, so a
	// locally-converged member may still be the only reachable holder
	// of a body some straggler is missing. Members repeat the beacon
	// until they exit, so it survives the lossy socket it travels on.
	FlagDone uint8 = 1 << 0
)

// Framing errors.
var (
	ErrBadMagic        = errors.New("wire: bad frame magic")
	ErrBadVersion      = errors.New("wire: unsupported frame version")
	ErrTruncated       = errors.New("wire: truncated frame")
	ErrOversize        = errors.New("wire: message exceeds datagram budget")
	ErrEmptyFrame      = errors.New("wire: empty frame")
	ErrEmptySection    = errors.New("wire: empty section")
	ErrTooManyMsgs     = errors.New("wire: too many messages for one section")
	ErrTooManySections = errors.New("wire: too many sections for one frame")
)

// Section is one group's slice of a datagram: its messages and control
// flags, tagged with the destination group id.
type Section struct {
	Group uint32
	Flags uint8
	Msgs  []msg.Message
}

// Frame is one decoded datagram: the sender, its per-peer sequence
// number, and one section per destination group.
type Frame struct {
	From     seq.NodeID
	Seqno    uint64
	Sections []Section
}

// frameSize returns the encoded size of a frame carrying secs, using the
// messages' WireSize (which the codec tests pin to len(Encode)).
func frameSize(secs []Section) int {
	n := headerSize
	for _, s := range secs {
		n += sectionOverhead
		for _, m := range s.Msgs {
			n += 4 + m.WireSize()
		}
	}
	return n
}

// EncodeFrame serializes one datagram carrying secs from from. A frame
// needs at least one section; a message-less section is valid only when
// it carries flags. The caller is responsible for keeping the result
// under the transport's datagram budget; EncodeFrame only enforces the
// structural count limits.
func EncodeFrame(from seq.NodeID, seqno uint64, secs []Section) ([]byte, error) {
	if len(secs) == 0 {
		return nil, ErrEmptyFrame
	}
	if len(secs) > maxFrameSections {
		return nil, ErrTooManySections
	}
	for _, s := range secs {
		if len(s.Msgs) == 0 && s.Flags == 0 {
			return nil, ErrEmptySection
		}
		if len(s.Msgs) > maxFrameMsgs {
			return nil, ErrTooManyMsgs
		}
	}
	buf := make([]byte, 0, frameSize(secs))
	buf = binary.LittleEndian.AppendUint16(buf, frameMagic)
	buf = append(buf, frameVersion, byte(len(secs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(from))
	buf = binary.LittleEndian.AppendUint64(buf, seqno)
	for _, s := range secs {
		buf = binary.LittleEndian.AppendUint32(buf, s.Group)
		buf = append(buf, s.Flags, byte(len(s.Msgs)))
		for _, m := range s.Msgs {
			enc := msg.Encode(m)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
			buf = append(buf, enc...)
		}
	}
	return buf, nil
}

// DecodeFrame parses one datagram. A version other than 2 is rejected
// with an error naming both versions, so a mixed-version deployment
// fails loudly instead of corrupting state.
func DecodeFrame(buf []byte) (Frame, error) {
	var f Frame
	if len(buf) < headerSize {
		return f, ErrTruncated
	}
	if binary.LittleEndian.Uint16(buf) != frameMagic {
		return f, ErrBadMagic
	}
	if buf[2] != frameVersion {
		return f, fmt.Errorf("%w: got v%d, this node speaks v%d", ErrBadVersion, buf[2], frameVersion)
	}
	sections := int(buf[3])
	if sections == 0 {
		return f, ErrEmptyFrame
	}
	f.From = seq.NodeID(binary.LittleEndian.Uint32(buf[4:]))
	f.Seqno = binary.LittleEndian.Uint64(buf[8:])
	off := headerSize
	f.Sections = make([]Section, 0, sections)
	for si := 0; si < sections; si++ {
		if off+sectionOverhead > len(buf) {
			return f, ErrTruncated
		}
		s := Section{
			Group: binary.LittleEndian.Uint32(buf[off:]),
			Flags: buf[off+4],
		}
		count := int(buf[off+5])
		off += sectionOverhead
		if count == 0 && s.Flags == 0 {
			return f, ErrEmptySection
		}
		if count > 0 {
			s.Msgs = make([]msg.Message, 0, count)
		}
		for i := 0; i < count; i++ {
			if off+4 > len(buf) {
				return f, ErrTruncated
			}
			n := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if n < 0 || off+n > len(buf) {
				return f, ErrTruncated
			}
			m, err := msg.Decode(buf[off : off+n])
			if err != nil {
				return f, fmt.Errorf("wire: section %d message %d: %w", si, i, err)
			}
			s.Msgs = append(s.Msgs, m)
			off += n
		}
		f.Sections = append(f.Sections, s)
	}
	if off != len(buf) {
		return f, fmt.Errorf("wire: %d trailing bytes after frame", len(buf)-off)
	}
	return f, nil
}
