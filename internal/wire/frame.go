// Package wire moves RingNet protocol messages over real UDP sockets —
// the step from event-driven simulation to real-time execution. The
// pieces compose bottom-up:
//
//   - frame.go:     datagram framing on top of internal/msg's binary codec
//     (several protocol messages batched per datagram, with
//     per-peer datagram sequencing for loss/reorder stats);
//   - transport.go: the UDP transport — one socket, a static peer table,
//     per-peer counters, an optional deterministic loss/jitter
//     injector at the socket layer, clean shutdown;
//   - driver.go:    a real-time executor for the deterministic sim
//     scheduler, so the unmodified protocol core (its RTO
//     timers, τ ticks, ack-delay timers) runs against the
//     wall clock;
//   - bridge.go:    the splice between internal/core and the transport —
//     remote ring members appear as forwarding endpoints on
//     the local netsim substrate;
//   - daemon.go:    node assembly for cmd/ringnetd and the multi-process
//     harness: config, lifecycle, and the delivery/metrics
//     status report.
//
// The paper's local-scope retransmission machinery (transport.Sender,
// couriers, Nack repair, token recovery) is reused as-is: the simulator's
// network is reduced to a zero-latency in-process dispatch layer and the
// real network supplies latency, jitter, loss, and reordering.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/msg"
	"repro/internal/seq"
)

// Datagram framing: a fixed header followed by length-prefixed encoded
// messages. Little-endian, like the message codec.
//
//	magic   u16  0x524E ("RN")
//	version u8   1
//	flags   u8   frame-level control bits (FlagDone, ...)
//	count   u8   messages in this datagram (0 allowed only when flags≠0)
//	from    u32  sender NodeID
//	seqno   u64  per-(sender→receiver) datagram sequence number
//	count × { len u32, len bytes of msg.Encode output }
const (
	frameMagic   = 0x524E
	frameVersion = 1
	headerSize   = 2 + 1 + 1 + 1 + 4 + 8

	// MaxDatagram is the default frame-size budget: safely under the
	// 65507-byte UDP payload ceiling, with headroom for the header.
	MaxDatagram = 60000

	// maxFrameMsgs is the per-datagram message cap imposed by the u8
	// count field.
	maxFrameMsgs = 255
)

// Frame-level control flags: daemon-to-daemon signals that ride the
// transport without entering the protocol core.
const (
	// FlagDone gossips "this member has delivered everything it
	// expects". Exiting a ring is only safe once every member is done:
	// gap repair (Nack) is pull-based, so a locally-converged member
	// may still be the only reachable holder of a body some straggler
	// is missing. Members repeat the beacon until they exit, so it
	// survives the lossy socket it travels on.
	FlagDone uint8 = 1 << 0
)

// Framing errors.
var (
	ErrBadMagic    = errors.New("wire: bad frame magic")
	ErrBadVersion  = errors.New("wire: unsupported frame version")
	ErrTruncated   = errors.New("wire: truncated frame")
	ErrOversize    = errors.New("wire: message exceeds datagram budget")
	ErrEmptyFrame  = errors.New("wire: empty frame")
	ErrTooManyMsgs = errors.New("wire: too many messages for one frame")
)

// Frame is one decoded datagram.
type Frame struct {
	From  seq.NodeID
	Seqno uint64
	Flags uint8
	Msgs  []msg.Message
}

// frameSize returns the encoded size of a frame carrying msgs, using the
// messages' WireSize (which the codec tests pin to len(Encode)).
func frameSize(msgs []msg.Message) int {
	n := headerSize
	for _, m := range msgs {
		n += 4 + m.WireSize()
	}
	return n
}

// EncodeFrame serializes one datagram carrying msgs (and optional
// control flags) from from. A message-less frame is valid only when it
// carries flags. The caller is responsible for keeping the result under
// the transport's datagram budget; EncodeFrame only enforces the
// structural count limit.
func EncodeFrame(from seq.NodeID, seqno uint64, flags uint8, msgs []msg.Message) ([]byte, error) {
	if len(msgs) == 0 && flags == 0 {
		return nil, ErrEmptyFrame
	}
	if len(msgs) > maxFrameMsgs {
		return nil, ErrTooManyMsgs
	}
	buf := make([]byte, 0, frameSize(msgs))
	buf = binary.LittleEndian.AppendUint16(buf, frameMagic)
	buf = append(buf, frameVersion, flags, byte(len(msgs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(from))
	buf = binary.LittleEndian.AppendUint64(buf, seqno)
	for _, m := range msgs {
		enc := msg.Encode(m)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, nil
}

// DecodeFrame parses one datagram.
func DecodeFrame(buf []byte) (Frame, error) {
	var f Frame
	if len(buf) < headerSize {
		return f, ErrTruncated
	}
	if binary.LittleEndian.Uint16(buf) != frameMagic {
		return f, ErrBadMagic
	}
	if buf[2] != frameVersion {
		return f, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	f.Flags = buf[3]
	count := int(buf[4])
	if count == 0 && f.Flags == 0 {
		return f, ErrEmptyFrame
	}
	f.From = seq.NodeID(binary.LittleEndian.Uint32(buf[5:]))
	f.Seqno = binary.LittleEndian.Uint64(buf[9:])
	off := headerSize
	f.Msgs = make([]msg.Message, 0, count)
	for i := 0; i < count; i++ {
		if off+4 > len(buf) {
			return f, ErrTruncated
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if n < 0 || off+n > len(buf) {
			return f, ErrTruncated
		}
		m, err := msg.Decode(buf[off : off+n])
		if err != nil {
			return f, fmt.Errorf("wire: frame message %d: %w", i, err)
		}
		f.Msgs = append(f.Msgs, m)
		off += n
	}
	if off != len(buf) {
		return f, fmt.Errorf("wire: %d trailing bytes after frame", len(buf)-off)
	}
	return f, nil
}
