package netsim

import (
	"testing"

	"repro/internal/msg"
	"repro/internal/seq"
	"repro/internal/sim"
)

type recorder struct {
	got []struct {
		from seq.NodeID
		m    msg.Message
		at   sim.Time
	}
	sched *sim.Scheduler
}

func (r *recorder) Recv(from seq.NodeID, m msg.Message) {
	r.got = append(r.got, struct {
		from seq.NodeID
		m    msg.Message
		at   sim.Time
	}{from, m, r.sched.Now()})
}

func newPair(t *testing.T, p LinkParams) (*Network, *recorder, *recorder) {
	t.Helper()
	sched := sim.NewScheduler()
	net := New(sched, sim.NewRNG(1))
	a := &recorder{sched: sched}
	b := &recorder{sched: sched}
	net.Register(1, a)
	net.Register(2, b)
	net.Connect(1, 2, p)
	return net, a, b
}

func TestSendDelivery(t *testing.T) {
	net, _, b := newPair(t, LinkParams{Latency: 5 * sim.Millisecond})
	if !net.Send(1, 2, &msg.Heartbeat{From: 1}) {
		t.Fatal("Send failed")
	}
	if _, err := net.Scheduler().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 1 {
		t.Fatalf("delivered %d, want 1", len(b.got))
	}
	if b.got[0].at != 5*sim.Millisecond {
		t.Fatalf("arrival at %v, want 5ms", b.got[0].at)
	}
	if b.got[0].from != 1 {
		t.Fatalf("from = %v", b.got[0].from)
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats %v", st)
	}
	if st.ByKind[msg.KindHeartbeat] != 1 {
		t.Fatal("ByKind not counted")
	}
}

func TestNoRoute(t *testing.T) {
	net, _, _ := newPair(t, DefaultWired)
	if net.Send(1, 99, &msg.Heartbeat{From: 1}) {
		t.Fatal("send to unknown node succeeded")
	}
	net.Register(3, &recorder{sched: net.Scheduler()})
	if net.Send(1, 3, &msg.Heartbeat{From: 1}) {
		t.Fatal("send without link succeeded")
	}
	if net.Stats().DroppedNoRoute != 2 {
		t.Fatalf("stats %v", net.Stats())
	}
}

func TestLinkDown(t *testing.T) {
	net, _, b := newPair(t, DefaultWired)
	net.SetLinkUp(1, 2, false)
	if net.Send(1, 2, &msg.Heartbeat{From: 1}) {
		t.Fatal("send over down link succeeded")
	}
	net.SetLinkUp(1, 2, true)
	net.Send(1, 2, &msg.Heartbeat{From: 1})
	if _, err := net.Scheduler().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 1 {
		t.Fatalf("delivered %d", len(b.got))
	}
	if !net.Linked(1, 2) || net.Linked(1, 9) {
		t.Fatal("Linked wrong")
	}
}

func TestCrashRecover(t *testing.T) {
	net, _, b := newPair(t, DefaultWired)
	net.Crash(2)
	if !net.Crashed(2) {
		t.Fatal("Crashed not reported")
	}
	net.Send(1, 2, &msg.Heartbeat{From: 1})
	if _, err := net.Scheduler().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 0 {
		t.Fatal("crashed node received")
	}
	// Crashed sender can't send either.
	net.Crash(1)
	if net.Send(1, 2, &msg.Heartbeat{From: 1}) {
		t.Fatal("crashed sender sent")
	}
	net.Recover(1)
	net.Recover(2)
	net.Send(1, 2, &msg.Heartbeat{From: 1})
	if _, err := net.Scheduler().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 1 {
		t.Fatal("recovery did not restore delivery")
	}
}

func TestCrashDuringFlight(t *testing.T) {
	net, _, b := newPair(t, LinkParams{Latency: 10 * sim.Millisecond})
	net.Send(1, 2, &msg.Heartbeat{From: 1})
	net.Scheduler().After(5*sim.Millisecond, func() { net.Crash(2) })
	if _, err := net.Scheduler().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 0 {
		t.Fatal("in-flight message delivered to node that crashed before arrival")
	}
}

func TestLoss(t *testing.T) {
	net, _, b := newPair(t, LinkParams{Latency: 1, Loss: 0.5})
	const n = 2000
	for i := 0; i < n; i++ {
		net.Send(1, 2, &msg.Heartbeat{From: 1})
	}
	if _, err := net.Scheduler().RunAll(); err != nil {
		t.Fatal(err)
	}
	got := len(b.got)
	if got < n*4/10 || got > n*6/10 {
		t.Fatalf("50%% loss delivered %d/%d", got, n)
	}
	st := net.Stats()
	if st.DroppedLoss+st.Delivered != n {
		t.Fatalf("loss accounting: %v", st)
	}
}

func TestJitterBoundsAndFIFO(t *testing.T) {
	net, _, b := newPair(t, LinkParams{Latency: 10 * sim.Millisecond, Jitter: 5 * sim.Millisecond})
	const n = 200
	for i := 0; i < n; i++ {
		net.Send(1, 2, &msg.Heartbeat{From: 1})
	}
	if _, err := net.Scheduler().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != n {
		t.Fatalf("delivered %d", len(b.got))
	}
	var prev sim.Time
	for _, g := range b.got {
		if g.at < 10*sim.Millisecond || g.at > 15*sim.Millisecond {
			t.Fatalf("arrival %v outside [10ms,15ms]", g.at)
		}
		if g.at < prev {
			t.Fatal("FIFO violated")
		}
		prev = g.at
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1000 B/s, 100-byte messages: each takes 100ms to serialize.
	sched := sim.NewScheduler()
	net := New(sched, sim.NewRNG(1))
	b := &recorder{sched: sched}
	net.Register(1, &recorder{sched: sched})
	net.Register(2, b)
	net.Connect(1, 2, LinkParams{Latency: 0, Bandwidth: 1000})
	payload := make([]byte, 100-29) // Data wire overhead is 29+4 bytes
	d := &msg.Data{Group: 1, SourceNode: 1, LocalSeq: 1, Payload: payload}
	size := d.WireSize()
	net.Send(1, 2, d)
	net.Send(1, 2, d)
	if _, err := sched.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 2 {
		t.Fatalf("delivered %d", len(b.got))
	}
	per := sim.Time(int64(size) * int64(sim.Second) / 1000)
	if b.got[0].at != per {
		t.Fatalf("first arrival %v, want %v", b.got[0].at, per)
	}
	if b.got[1].at != 2*per {
		t.Fatalf("second arrival %v, want %v (serialized after first)", b.got[1].at, 2*per)
	}
}

func TestDirectedAsymmetry(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched, sim.NewRNG(1))
	a := &recorder{sched: sched}
	b := &recorder{sched: sched}
	net.Register(1, a)
	net.Register(2, b)
	net.ConnectDirected(1, 2, LinkParams{Latency: 1 * sim.Millisecond})
	net.ConnectDirected(2, 1, LinkParams{Latency: 9 * sim.Millisecond})
	net.Send(1, 2, &msg.Heartbeat{From: 1})
	net.Send(2, 1, &msg.Heartbeat{From: 2})
	if _, err := sched.RunAll(); err != nil {
		t.Fatal(err)
	}
	if b.got[0].at != 1*sim.Millisecond || a.got[0].at != 9*sim.Millisecond {
		t.Fatalf("asymmetric latencies wrong: %v %v", b.got[0].at, a.got[0].at)
	}
	p, ok := net.LinkParamsOf(2, 1)
	if !ok || p.Latency != 9*sim.Millisecond {
		t.Fatal("LinkParamsOf")
	}
}

func TestDisconnect(t *testing.T) {
	net, _, _ := newPair(t, DefaultWired)
	net.Disconnect(1, 2)
	if net.Send(1, 2, &msg.Heartbeat{From: 1}) {
		t.Fatal("send over removed link")
	}
}

func TestBroadcast(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched, sim.NewRNG(1))
	recs := make([]*recorder, 4)
	for i := range recs {
		recs[i] = &recorder{sched: sched}
		net.Register(seq.NodeID(i+1), recs[i])
	}
	for i := 2; i <= 4; i++ {
		net.Connect(1, seq.NodeID(i), DefaultWired)
	}
	net.Broadcast(1, []seq.NodeID{2, 3, 4}, &msg.Heartbeat{From: 1})
	if _, err := sched.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if len(recs[i].got) != 1 {
			t.Fatalf("node %d got %d", i+1, len(recs[i].got))
		}
	}
}

func TestTraceHook(t *testing.T) {
	net, _, _ := newPair(t, DefaultWired)
	var traced int
	net.Trace = func(at sim.Time, from, to seq.NodeID, m msg.Message) { traced++ }
	net.Send(1, 2, &msg.Heartbeat{From: 1})
	if _, err := net.Scheduler().RunAll(); err != nil {
		t.Fatal(err)
	}
	if traced != 1 {
		t.Fatalf("traced %d", traced)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []sim.Time {
		sched := sim.NewScheduler()
		net := New(sched, sim.NewRNG(42))
		b := &recorder{sched: sched}
		net.Register(1, &recorder{sched: sched})
		net.Register(2, b)
		net.Connect(1, 2, LinkParams{Latency: 1 * sim.Millisecond, Jitter: 2 * sim.Millisecond, Loss: 0.2})
		for i := 0; i < 100; i++ {
			net.Send(1, 2, &msg.Heartbeat{From: 1})
		}
		if _, err := sched.RunAll(); err != nil {
			t.Fatal(err)
		}
		out := make([]sim.Time, len(b.got))
		for i, g := range b.got {
			out[i] = g.at
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d deliveries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRegisterPanicsOnNone(t *testing.T) {
	net, _, _ := newPair(t, DefaultWired)
	defer func() {
		if recover() == nil {
			t.Fatal("Register(None) did not panic")
		}
	}()
	net.Register(seq.None, nil)
}

func TestHandlerFunc(t *testing.T) {
	called := false
	h := HandlerFunc(func(from seq.NodeID, m msg.Message) { called = true })
	h.Recv(1, &msg.Heartbeat{})
	if !called {
		t.Fatal("HandlerFunc not invoked")
	}
}

func TestStatsString(t *testing.T) {
	net, _, _ := newPair(t, DefaultWired)
	if net.Stats().String() == "" {
		t.Fatal("empty stats string")
	}
}
