package netsim

import (
	"testing"

	"repro/internal/msg"
	"repro/internal/seq"
	"repro/internal/sim"
)

func burstMsgs(n int) []msg.Message {
	out := make([]msg.Message, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &msg.Data{SourceNode: 1, LocalSeq: seq.LocalSeq(i + 1), OrderingNode: 1, GlobalSeq: seq.GlobalSeq(i + 1)})
	}
	return out
}

type burstRecorder struct {
	at   []sim.Time
	msgs []msg.Message
	s    *sim.Scheduler
}

func (r *burstRecorder) Recv(from seq.NodeID, m msg.Message) {
	r.at = append(r.at, r.s.Now())
	r.msgs = append(r.msgs, m)
}

// TestSendBurstSingleEvent: on a jitter-free link a burst arrives as one
// scheduler event, in send order, at the same time individual sends
// would have arrived.
func TestSendBurstSingleEvent(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched, sim.NewRNG(1))
	rec := &burstRecorder{s: sched}
	net.Register(1, HandlerFunc(func(seq.NodeID, msg.Message) {}))
	net.Register(2, rec)
	net.Connect(1, 2, LinkParams{Latency: 2 * sim.Millisecond})

	msgs := burstMsgs(5)
	net.SendBurst(1, 2, msgs)
	if got := sched.Len(); got != 1 {
		t.Fatalf("burst scheduled %d events, want 1", got)
	}
	sched.Run(sim.Second)
	if len(rec.msgs) != 5 {
		t.Fatalf("delivered %d, want 5", len(rec.msgs))
	}
	for i, m := range rec.msgs {
		if m != msgs[i] {
			t.Fatalf("delivery %d out of order", i)
		}
		if rec.at[i] != 2*sim.Millisecond {
			t.Fatalf("delivery %d at %v, want 2ms", i, rec.at[i])
		}
	}
	st := net.Stats()
	if st.Sent != 5 || st.Delivered != 5 || st.DataMsgs != 5 || st.CtrlMsgs != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSendBurstJitterFallback: links with jitter cannot share an arrival
// and fall back to one event per frame, drawing per-message jitter
// exactly like Send.
func TestSendBurstJitterFallback(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched, sim.NewRNG(7))
	rec := &burstRecorder{s: sched}
	net.Register(1, HandlerFunc(func(seq.NodeID, msg.Message) {}))
	net.Register(2, rec)
	net.Connect(1, 2, LinkParams{Latency: 2 * sim.Millisecond, Jitter: sim.Millisecond})

	net.SendBurst(1, 2, burstMsgs(4))
	if got := sched.Len(); got != 4 {
		t.Fatalf("jittered burst scheduled %d events, want 4 (per-frame fallback)", got)
	}
	sched.Run(sim.Second)
	if len(rec.msgs) != 4 {
		t.Fatalf("delivered %d, want 4", len(rec.msgs))
	}
	for i := 1; i < len(rec.at); i++ {
		if rec.at[i] < rec.at[i-1] {
			t.Fatal("FIFO violated")
		}
	}
}

// TestSendBurstLossPerMessage: loss draws happen per message inside a
// burst — identical RNG consumption to individual sends — and survivors
// still share one delivery event.
func TestSendBurstLossPerMessage(t *testing.T) {
	run := func(burst bool) (delivered uint64, state uint64) {
		sched := sim.NewScheduler()
		rng := sim.NewRNG(42)
		net := New(sched, rng)
		net.Register(1, HandlerFunc(func(seq.NodeID, msg.Message) {}))
		net.Register(2, HandlerFunc(func(seq.NodeID, msg.Message) {}))
		net.Connect(1, 2, LinkParams{Latency: sim.Millisecond, Loss: 0.5})
		msgs := burstMsgs(64)
		if burst {
			net.SendBurst(1, 2, msgs)
		} else {
			for _, m := range msgs {
				net.Send(1, 2, m)
			}
		}
		sched.Run(sim.Second)
		return net.Stats().Delivered, rng.Uint64()
	}
	bd, bs := run(true)
	sd, ss := run(false)
	if bd != sd || bs != ss {
		t.Fatalf("burst (delivered=%d, rng=%d) diverges from per-message sends (delivered=%d, rng=%d)", bd, bs, sd, ss)
	}
	if bd == 0 || bd == 64 {
		t.Fatalf("loss pattern degenerate: %d/64", bd)
	}
}

// TestControlDataAccounting: Data/SourceData land in the data-plane
// counters, everything else in control, and bytes follow WireSize.
func TestControlDataAccounting(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched, sim.NewRNG(1))
	net.Register(1, HandlerFunc(func(seq.NodeID, msg.Message) {}))
	net.Register(2, HandlerFunc(func(seq.NodeID, msg.Message) {}))
	net.Connect(1, 2, LinkParams{Latency: sim.Millisecond})

	d := &msg.Data{SourceNode: 1, LocalSeq: 1, OrderingNode: 1, GlobalSeq: 1, Payload: []byte("abc")}
	a := &msg.Ack{From: 1, CumGlobal: 1}
	net.Send(1, 2, d)
	net.Send(1, 2, a)
	st := net.Stats()
	if st.DataMsgs != 1 || st.CtrlMsgs != 1 {
		t.Fatalf("plane counts = data %d, ctrl %d", st.DataMsgs, st.CtrlMsgs)
	}
	if st.DataBytes != uint64(d.WireSize()) || st.CtrlBytes != uint64(a.WireSize()) {
		t.Fatalf("plane bytes = data %d (want %d), ctrl %d (want %d)",
			st.DataBytes, d.WireSize(), st.CtrlBytes, a.WireSize())
	}
	if st.Bytes != st.DataBytes+st.CtrlBytes {
		t.Fatalf("byte split %d+%d does not sum to total %d", st.DataBytes, st.CtrlBytes, st.Bytes)
	}
}
