// Package netsim provides the simulated network substrate the RingNet
// protocol runs on: named nodes connected by directed links with
// configurable latency, jitter, loss probability, and bandwidth. The
// substrate replaces the paper's mobile-Internet testbed; the protocol
// observes only message arrival, delay, and loss, all of which are
// reproduced here deterministically from a seed.
package netsim

import (
	"fmt"

	"repro/internal/msg"
	"repro/internal/seq"
	"repro/internal/sim"
)

// Handler receives messages delivered to a node.
type Handler interface {
	Recv(from seq.NodeID, m msg.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from seq.NodeID, m msg.Message)

// Recv calls f(from, m).
func (f HandlerFunc) Recv(from seq.NodeID, m msg.Message) { f(from, m) }

// LinkParams describes one directed link's quality.
type LinkParams struct {
	// Latency is the fixed propagation delay.
	Latency sim.Time
	// Jitter adds a uniform random extra delay in [0, Jitter].
	Jitter sim.Time
	// Loss is the probability a transmission is dropped.
	Loss float64
	// Bandwidth in bytes per virtual second; 0 means unlimited. The
	// serialization delay of an n-byte message is n/Bandwidth seconds.
	Bandwidth int64
}

// DefaultWired are typical wired-backbone parameters (2 ms, no loss).
var DefaultWired = LinkParams{Latency: 2 * sim.Millisecond}

// DefaultWireless are typical last-hop wireless parameters: higher
// latency, jitter and a non-zero bit-error-driven loss probability
// (paper §1 concern (B)).
var DefaultWireless = LinkParams{Latency: 8 * sim.Millisecond, Jitter: 4 * sim.Millisecond, Loss: 0.01}

type link struct {
	params LinkParams
	up     bool
	// lastArrival enforces per-link FIFO: a message never overtakes an
	// earlier one on the same link (jitter is clamped).
	lastArrival sim.Time
	// busyUntil models serialization: the next transmission starts
	// after the previous one finished serializing.
	busyUntil sim.Time
}

type endpoint struct {
	handler Handler
	crashed bool
}

// delivery is one scheduled in-flight transmission — a single message,
// or a burst of messages sharing one arrival (SendBurst). Deliveries are
// pooled and dispatched through the scheduler's closure-free AtCall, so
// a Send allocates nothing once the pool is warm.
type delivery struct {
	net  *Network
	dst  *endpoint
	from seq.NodeID
	to   seq.NodeID
	m    msg.Message
	run  []msg.Message // burst payload; m is nil when set
}

// deliver is the static delivery handler.
func deliver(v any) {
	d := v.(*delivery)
	n, dst, from, to, m, run := d.net, d.dst, d.from, d.to, d.m, d.run
	d.dst = nil
	d.m = nil
	d.run = nil
	n.free = append(n.free, d)
	if m != nil {
		n.deliverOne(dst, from, to, m)
		return
	}
	// Burst: the run buffer goes back to its pool only after dispatch —
	// handlers may send (and thus borrow buffers) reentrantly.
	if dst.crashed {
		n.stats.DroppedNodeDown += uint64(len(run))
	} else {
		for _, m := range run {
			n.deliverOne(dst, from, to, m)
		}
	}
	for i := range run {
		run[i] = nil // don't retain delivered payloads through the pool
	}
	n.runFree = append(n.runFree, run[:0])
}

func (n *Network) deliverOne(dst *endpoint, from, to seq.NodeID, m msg.Message) {
	if dst.crashed {
		n.stats.DroppedNodeDown++
		return
	}
	n.stats.Delivered++
	if n.Trace != nil {
		n.Trace(n.sched.Now(), from, to, m)
	}
	dst.handler.Recv(from, m)
}

// Stats aggregates network-wide counters. Control/data classification:
// Data and SourceData frames are the data plane (they carry payloads —
// including any piggybacked acknowledgements, which is the point of
// piggybacking); every other kind is control plane.
type Stats struct {
	Sent            uint64
	Delivered       uint64
	DroppedLoss     uint64
	DroppedLinkDown uint64
	DroppedNodeDown uint64
	DroppedNoRoute  uint64
	Bytes           uint64
	DataMsgs        uint64
	DataBytes       uint64
	CtrlMsgs        uint64
	CtrlBytes       uint64
	ByKind          map[msg.Kind]uint64
}

// Network is the simulated message fabric.
type Network struct {
	sched   *sim.Scheduler
	rng     *sim.RNG
	nodes   map[seq.NodeID]*endpoint
	links   map[[2]seq.NodeID]*link
	free    []*delivery     // recycled delivery records
	runFree [][]msg.Message // recycled burst buffers
	stats   Stats
	// Trace, when non-nil, observes every delivery (after loss and
	// delay). Useful in tests.
	Trace func(at sim.Time, from, to seq.NodeID, m msg.Message)
	// FIFO enforces in-order per-link delivery (default true; real IP
	// paths reorder rarely, and the paper's per-hop reliability assumes
	// a retransmission scheme, not reordering recovery).
	FIFO bool
}

// New creates an empty network on the given scheduler and RNG stream.
func New(sched *sim.Scheduler, rng *sim.RNG) *Network {
	return &Network{
		sched: sched,
		rng:   rng,
		nodes: make(map[seq.NodeID]*endpoint),
		links: make(map[[2]seq.NodeID]*link),
		FIFO:  true,
	}
}

// Scheduler returns the underlying event scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Now returns the current virtual time.
func (n *Network) Now() sim.Time { return n.sched.Now() }

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	s := n.stats
	s.ByKind = make(map[msg.Kind]uint64, len(n.stats.ByKind))
	for k, v := range n.stats.ByKind {
		s.ByKind[k] = v
	}
	return s
}

// Register attaches a handler to a node identity. Registering an existing
// node replaces its handler and clears its crashed state.
func (n *Network) Register(id seq.NodeID, h Handler) {
	if id == seq.None {
		panic("netsim: registering the None node")
	}
	n.nodes[id] = &endpoint{handler: h}
}

// Unregister removes a node entirely.
func (n *Network) Unregister(id seq.NodeID) { delete(n.nodes, id) }

// Crash marks a node down: it neither sends nor receives until Recover.
func (n *Network) Crash(id seq.NodeID) {
	if ep, ok := n.nodes[id]; ok {
		ep.crashed = true
	}
}

// Recover brings a crashed node back.
func (n *Network) Recover(id seq.NodeID) {
	if ep, ok := n.nodes[id]; ok {
		ep.crashed = false
	}
}

// Crashed reports whether a node is down.
func (n *Network) Crashed(id seq.NodeID) bool {
	ep, ok := n.nodes[id]
	return ok && ep.crashed
}

// Connect installs a bidirectional link with the same parameters each way.
func (n *Network) Connect(a, b seq.NodeID, p LinkParams) {
	n.ConnectDirected(a, b, p)
	n.ConnectDirected(b, a, p)
}

// ConnectDirected installs or replaces one directed link.
func (n *Network) ConnectDirected(from, to seq.NodeID, p LinkParams) {
	n.links[[2]seq.NodeID{from, to}] = &link{params: p, up: true}
}

// Disconnect removes the links between a and b in both directions.
func (n *Network) Disconnect(a, b seq.NodeID) {
	delete(n.links, [2]seq.NodeID{a, b})
	delete(n.links, [2]seq.NodeID{b, a})
}

// SetLinkUp marks both directions of a link up or down (partitions).
func (n *Network) SetLinkUp(a, b seq.NodeID, up bool) {
	if l, ok := n.links[[2]seq.NodeID{a, b}]; ok {
		l.up = up
	}
	if l, ok := n.links[[2]seq.NodeID{b, a}]; ok {
		l.up = up
	}
}

// Linked reports whether a usable directed link from→to exists.
func (n *Network) Linked(from, to seq.NodeID) bool {
	l, ok := n.links[[2]seq.NodeID{from, to}]
	return ok && l.up
}

// LinkParamsOf returns the parameters of the directed link, if present.
func (n *Network) LinkParamsOf(from, to seq.NodeID) (LinkParams, bool) {
	l, ok := n.links[[2]seq.NodeID{from, to}]
	if !ok {
		return LinkParams{}, false
	}
	return l.params, true
}

// Send transmits m from→to, applying loss, serialization, latency and
// jitter. Delivery (if any) happens via the destination handler at a
// later virtual time. Send reports whether the message entered the link
// (false when there is no route, the link is down, or either node is
// crashed — the sender learns nothing either way, exactly like UDP).
func (n *Network) Send(from, to seq.NodeID, m msg.Message) bool {
	n.stats.Sent++
	if n.stats.ByKind == nil {
		n.stats.ByKind = make(map[msg.Kind]uint64)
	}
	n.stats.ByKind[m.Kind()]++

	src, ok := n.nodes[from]
	if !ok || src.crashed {
		n.stats.DroppedNodeDown++
		return false
	}
	dst, ok := n.nodes[to]
	if !ok {
		n.stats.DroppedNoRoute++
		return false
	}
	l, ok := n.links[[2]seq.NodeID{from, to}]
	if !ok {
		n.stats.DroppedNoRoute++
		return false
	}
	if !l.up {
		n.stats.DroppedLinkDown++
		return false
	}

	size := m.WireSize()
	n.stats.Bytes += uint64(size)
	n.countPlane(m, size)

	// Serialization delay occupies the sender side of the link.
	start := n.sched.Now()
	if l.params.Bandwidth > 0 {
		if l.busyUntil > start {
			start = l.busyUntil
		}
		ser := sim.Time(int64(size) * int64(sim.Second) / l.params.Bandwidth)
		l.busyUntil = start + ser
		start = l.busyUntil
	}

	if n.rng.Bool(l.params.Loss) {
		n.stats.DroppedLoss++
		return true // entered the link, then died
	}

	delay := l.params.Latency
	if l.params.Jitter > 0 {
		delay += n.rng.Duration(0, l.params.Jitter)
	}
	arrival := start + delay
	if n.FIFO && arrival < l.lastArrival {
		arrival = l.lastArrival
	}
	l.lastArrival = arrival

	var d *delivery
	if k := len(n.free); k > 0 {
		d = n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
	} else {
		d = &delivery{}
	}
	d.net, d.dst, d.from, d.to, d.m = n, dst, from, to, m
	n.sched.AtCall(arrival, deliver, d)
	return true
}

// countPlane attributes one transmission that entered a link to the data
// or control plane.
func (n *Network) countPlane(m msg.Message, size int) {
	switch m.Kind() {
	case msg.KindData, msg.KindSourceData:
		n.stats.DataMsgs++
		n.stats.DataBytes += uint64(size)
	default:
		n.stats.CtrlMsgs++
		n.stats.CtrlBytes += uint64(size)
	}
}

// SendBurst transmits a run of messages from→to as one link burst: on a
// jitter-free, bandwidth-unlimited link the surviving messages share a
// single scheduled delivery event instead of one event per frame, which
// is the transport layer's batched-delivery fast path. Loss is still
// drawn per message, in send order, so the RNG stream — and therefore
// every downstream stochastic outcome — is identical to len(msgs)
// individual Sends. Links with jitter or a bandwidth model fall back to
// per-message Send (their per-frame delays differ, so frames cannot
// share an arrival). The caller keeps ownership of msgs; SendBurst
// copies what it needs.
func (n *Network) SendBurst(from, to seq.NodeID, msgs []msg.Message) {
	if len(msgs) == 0 {
		return
	}
	if len(msgs) == 1 {
		n.Send(from, to, msgs[0])
		return
	}
	l, ok := n.links[[2]seq.NodeID{from, to}]
	if !ok || !l.up || l.params.Jitter > 0 || l.params.Bandwidth > 0 {
		for _, m := range msgs {
			n.Send(from, to, m)
		}
		return
	}
	src, ok := n.nodes[from]
	if !ok || src.crashed {
		for _, m := range msgs {
			n.Send(from, to, m) // per-message drop accounting, same as Send
		}
		return
	}
	dst, ok := n.nodes[to]
	if !ok {
		for _, m := range msgs {
			n.Send(from, to, m)
		}
		return
	}

	var run []msg.Message
	if k := len(n.runFree); k > 0 {
		run = n.runFree[k-1]
		n.runFree[k-1] = nil
		n.runFree = n.runFree[:k-1]
	}
	for _, m := range msgs {
		n.stats.Sent++
		if n.stats.ByKind == nil {
			n.stats.ByKind = make(map[msg.Kind]uint64)
		}
		n.stats.ByKind[m.Kind()]++
		size := m.WireSize()
		n.stats.Bytes += uint64(size)
		n.countPlane(m, size)
		if n.rng.Bool(l.params.Loss) {
			n.stats.DroppedLoss++
			continue
		}
		run = append(run, m)
	}
	if len(run) == 0 {
		n.runFree = append(n.runFree, run)
		return
	}

	arrival := n.sched.Now() + l.params.Latency
	if n.FIFO && arrival < l.lastArrival {
		arrival = l.lastArrival
	}
	l.lastArrival = arrival

	var d *delivery
	if k := len(n.free); k > 0 {
		d = n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
	} else {
		d = &delivery{}
	}
	d.net, d.dst, d.from, d.to, d.run = n, dst, from, to, run
	n.sched.AtCall(arrival, deliver, d)
}

// Broadcast sends m from one node to each of the given destinations.
func (n *Network) Broadcast(from seq.NodeID, to []seq.NodeID, m msg.Message) {
	for _, t := range to {
		n.Send(from, t, m)
	}
}

// NodeIDs returns all registered node IDs (unsorted).
func (n *Network) NodeIDs() []seq.NodeID {
	out := make([]seq.NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	return out
}

func (s Stats) String() string {
	return fmt.Sprintf("net{sent=%d delivered=%d lost=%d linkdown=%d nodedown=%d noroute=%d bytes=%d}",
		s.Sent, s.Delivered, s.DroppedLoss, s.DroppedLinkDown, s.DroppedNodeDown, s.DroppedNoRoute, s.Bytes)
}
