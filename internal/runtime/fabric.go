// Package runtime is the wall-clock concurrent counterpart of the
// deterministic DES: nodes are goroutines, links are channels, and
// latency/loss are applied in real time. The protocol logic mirrors the
// top logical ring of RingNet — token-based total ordering with reliable
// ring forwarding — so the examples can demonstrate the paper's core
// mechanism running with true parallelism (and under the race detector),
// while the benchmarks keep using the reproducible virtual-time engine.
package runtime

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/seq"
)

// LinkParams is the real-time link model.
type LinkParams struct {
	Latency time.Duration
	Jitter  time.Duration
	Loss    float64
}

// Envelope is one in-flight message.
type Envelope struct {
	From    seq.NodeID
	Payload any
}

// Handler consumes messages delivered to a node. Calls are serialized
// per node (one inbox goroutine each).
type Handler interface {
	Handle(env Envelope)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(env Envelope)

// Handle calls f.
func (f HandlerFunc) Handle(env Envelope) { f(env) }

type inbox struct {
	ch   chan Envelope
	done chan struct{}
}

// Fabric is a concurrent message fabric: per-node inbox goroutines,
// timer-based delivery, seeded loss.
type Fabric struct {
	mu     sync.Mutex
	nodes  map[seq.NodeID]*inbox
	links  map[[2]seq.NodeID]LinkParams
	rng    *rand.Rand
	closed bool
	wg     sync.WaitGroup
	// delayed tracks armed delivery timers so Close can stop the ones
	// that have not fired and join the ones that have: no delivery
	// goroutine outlives Close.
	delayed map[*delayedSend]struct{}

	// Sent and Dropped count transmissions (atomic under mu).
	Sent    uint64
	Dropped uint64
}

// delayedSend is one latency-delayed in-flight delivery.
type delayedSend struct{ t *time.Timer }

// NewFabric returns a fabric seeded for reproducible loss decisions
// (delivery timing is still wall-clock and inherently racy).
func NewFabric(seed int64) *Fabric {
	return &Fabric{
		nodes:   make(map[seq.NodeID]*inbox),
		links:   make(map[[2]seq.NodeID]LinkParams),
		rng:     rand.New(rand.NewSource(seed)),
		delayed: make(map[*delayedSend]struct{}),
	}
}

// Register spawns the node's inbox goroutine.
func (f *Fabric) Register(id seq.NodeID, h Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	if _, dup := f.nodes[id]; dup {
		panic("runtime: duplicate node")
	}
	ib := &inbox{ch: make(chan Envelope, 1024), done: make(chan struct{})}
	f.nodes[id] = ib
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			select {
			case env := <-ib.ch:
				h.Handle(env)
			case <-ib.done:
				return
			}
		}
	}()
}

// Connect installs a bidirectional link.
func (f *Fabric) Connect(a, b seq.NodeID, p LinkParams) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links[[2]seq.NodeID{a, b}] = p
	f.links[[2]seq.NodeID{b, a}] = p
}

// Send transmits payload from→to with the link's latency/jitter/loss.
// It reports whether the message entered the link.
func (f *Fabric) Send(from, to seq.NodeID, payload any) bool {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return false
	}
	p, ok := f.links[[2]seq.NodeID{from, to}]
	ib, ok2 := f.nodes[to]
	if !ok || !ok2 {
		f.Dropped++
		f.mu.Unlock()
		return false
	}
	f.Sent++
	drop := p.Loss > 0 && f.rng.Float64() < p.Loss
	var delay time.Duration
	if !drop {
		delay = p.Latency
		if p.Jitter > 0 {
			delay += time.Duration(f.rng.Int63n(int64(p.Jitter) + 1))
		}
	}
	f.mu.Unlock()
	if drop {
		f.mu.Lock()
		f.Dropped++
		f.mu.Unlock()
		return true
	}
	env := Envelope{From: from, Payload: payload}
	if delay <= 0 {
		select {
		case ib.ch <- env:
		case <-ib.done:
		}
		return true
	}
	// Delayed deliveries are tracked so Close can join them: the timer
	// callback is wg-counted from the moment it is armed, and Close
	// reclaims the count for every timer it manages to stop first.
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return true
	}
	f.wg.Add(1)
	ds := &delayedSend{}
	f.delayed[ds] = struct{}{}
	ds.t = time.AfterFunc(delay, func() {
		defer f.wg.Done()
		f.mu.Lock()
		delete(f.delayed, ds)
		closed := f.closed
		f.mu.Unlock()
		if closed {
			return
		}
		select {
		case ib.ch <- env:
		case <-ib.done:
		}
	})
	f.mu.Unlock()
	return true
}

// Close stops all inbox goroutines and all pending delayed deliveries
// and waits for both: when Close returns, no fabric goroutine is left
// running and no handler will be invoked again.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	for _, ib := range f.nodes {
		close(ib.done)
	}
	for ds := range f.delayed {
		if ds.t.Stop() {
			// The callback will never run; reclaim its count. Timers
			// that already fired run their callback, observe closed,
			// and call Done themselves.
			delete(f.delayed, ds)
			f.wg.Done()
		}
	}
	f.mu.Unlock()
	f.wg.Wait()
}
