package runtime

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/seq"
)

// This file runs the paper's top logical ring live: each ring member is
// a goroutine-backed node; the OrderingToken circulates over the fabric;
// each member assigns global sequence numbers to its own pending source
// messages while holding the token, forwards bodies around the ring, and
// delivers the totally-ordered stream to its subscriber. It is the
// wall-clock demonstration of Message-Ordering + Message-Forwarding
// (paper §4.2.1–§4.2.2); the deterministic engine remains the measured
// artifact.

type liveToken struct {
	Next    seq.GlobalSeq
	Assign  map[seq.GlobalSeq]liveEntry // global → (origin, local)
	Horizon seq.GlobalSeq               // everything below is replicated ring-wide
}

type liveEntry struct {
	Origin seq.NodeID
	Local  seq.LocalSeq
}

type liveData struct {
	Global  seq.GlobalSeq
	Origin  seq.NodeID
	Local   seq.LocalSeq
	Payload []byte
}

type tokenPass struct{ Tok liveToken }

// Ring is a live token ring of ordering nodes.
type Ring struct {
	fabric  *Fabric
	members []seq.NodeID
	nodes   map[seq.NodeID]*liveNode
}

// Deliverer observes one node's totally-ordered delivery stream.
type Deliverer func(global seq.GlobalSeq, origin seq.NodeID, payload []byte)

// HashDeliverer folds each delivery into h — the delivery-order
// fingerprint shared with the simulator's golden-trace tests and the
// ringnetd wire harness (metrics.OrderHash) — before passing it on to
// wrap (which may be nil). The live ring has no per-source local
// sequence at delivery time, so it hashes (global, origin, 0): two live
// members agree iff their digests match, but live digests are not
// comparable with engine digests.
func HashDeliverer(h *metrics.OrderHash, wrap Deliverer) Deliverer {
	return func(global seq.GlobalSeq, origin seq.NodeID, payload []byte) {
		h.Note(global, origin, 0)
		if wrap != nil {
			wrap(global, origin, payload)
		}
	}
}

type liveNode struct {
	r    *Ring
	id   seq.NodeID
	next seq.NodeID

	mu       sync.Mutex
	pending  [][]byte // source messages awaiting the token
	nextLoc  seq.LocalSeq
	bodies   map[seq.GlobalSeq]*liveData
	front    seq.GlobalSeq
	deliver  Deliverer
	lastTok  time.Time
	received map[seq.GlobalSeq]bool
}

// NewRing builds a live ring over the fabric. members must have at least
// one node; deliverers maps each member to its application callback.
func NewRing(f *Fabric, members []seq.NodeID, link LinkParams, deliverers map[seq.NodeID]Deliverer) *Ring {
	ms := append([]seq.NodeID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	r := &Ring{fabric: f, members: ms, nodes: make(map[seq.NodeID]*liveNode)}
	for i, id := range ms {
		n := &liveNode{
			r:        r,
			id:       id,
			next:     ms[(i+1)%len(ms)],
			bodies:   make(map[seq.GlobalSeq]*liveData),
			received: make(map[seq.GlobalSeq]bool),
			deliver:  deliverers[id],
		}
		r.nodes[id] = n
		f.Register(id, n)
	}
	for i, id := range ms {
		f.Connect(id, ms[(i+1)%len(ms)], link)
	}
	return r
}

// Start injects the token at the first member.
func (r *Ring) Start() {
	first := r.nodes[r.members[0]]
	tok := liveToken{Next: 1, Assign: make(map[seq.GlobalSeq]liveEntry)}
	first.Handle(Envelope{From: first.id, Payload: tokenPass{Tok: tok}})
}

// Submit queues one source message at member id (thread-safe: any
// goroutine may call it concurrently).
func (r *Ring) Submit(id seq.NodeID, payload []byte) bool {
	n := r.nodes[id]
	if n == nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	cp := append([]byte(nil), payload...)
	n.pending = append(n.pending, cp)
	return true
}

// Fronts returns each member's delivered high-water mark.
func (r *Ring) Fronts() map[seq.NodeID]seq.GlobalSeq {
	out := make(map[seq.NodeID]seq.GlobalSeq, len(r.nodes))
	for id, n := range r.nodes {
		n.mu.Lock()
		out[id] = n.front
		n.mu.Unlock()
	}
	return out
}

// Handle implements Handler: token passes and data forwarding.
func (n *liveNode) Handle(env Envelope) {
	switch v := env.Payload.(type) {
	case tokenPass:
		n.onToken(v.Tok)
	case *liveData:
		n.onData(v)
	}
}

func (n *liveNode) onToken(tok liveToken) {
	n.mu.Lock()
	n.lastTok = time.Now()
	// Everything the arriving token records is replicated at previous
	// holders: safe to deliver.
	if tok.Next > tok.Horizon {
		tok.Horizon = tok.Next
	}
	// Assign globals to pending source messages and ship the bodies.
	var ship []*liveData
	for _, p := range n.pending {
		n.nextLoc++
		g := tok.Next
		tok.Next++
		tok.Assign[g] = liveEntry{Origin: n.id, Local: n.nextLoc}
		d := &liveData{Global: g, Origin: n.id, Local: n.nextLoc, Payload: p}
		n.bodies[g] = d
		n.received[g] = true
		ship = append(ship, d)
	}
	n.pending = nil
	// Compact the assignment map below the ring-wide horizon.
	for g := range tok.Assign {
		if g < tok.Horizon {
			delete(tok.Assign, g)
		}
	}
	n.drainLocked()
	next := n.next
	n.mu.Unlock()

	for _, d := range ship {
		if next != n.id {
			n.r.fabric.Send(n.id, next, d)
		}
	}
	if next == n.id {
		// Singleton ring: re-hold shortly.
		time.AfterFunc(time.Millisecond, func() {
			n.Handle(Envelope{From: n.id, Payload: tokenPass{Tok: tok}})
		})
		return
	}
	n.r.fabric.Send(n.id, next, tokenPass{Tok: tok})
}

func (n *liveNode) onData(d *liveData) {
	n.mu.Lock()
	forward := !n.received[d.Global] && n.next != d.Origin
	if !n.received[d.Global] {
		n.received[d.Global] = true
		n.bodies[d.Global] = d
	}
	n.drainLocked()
	next := n.next
	n.mu.Unlock()
	if forward {
		n.r.fabric.Send(n.id, next, d)
	}
}

// drainLocked delivers the contiguous prefix of bodies. Because global
// sequence numbers are assigned by a single circulating token, the
// contiguous prefix is identical at every node — delivering it greedily
// preserves total order. Caller holds mu.
func (n *liveNode) drainLocked() {
	for {
		g := n.front + 1
		d, ok := n.bodies[g]
		if !ok {
			return
		}
		delete(n.bodies, g)
		n.front = g
		if n.deliver != nil {
			// Callback under mu keeps per-node delivery serialized;
			// subscribers must not call back into the ring.
			n.deliver(d.Global, d.Origin, d.Payload)
		}
	}
}
