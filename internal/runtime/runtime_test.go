package runtime

import (
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/seq"
)

func TestFabricDelivery(t *testing.T) {
	f := NewFabric(1)
	defer f.Close()
	got := make(chan Envelope, 10)
	f.Register(1, HandlerFunc(func(env Envelope) {}))
	f.Register(2, HandlerFunc(func(env Envelope) { got <- env }))
	f.Connect(1, 2, LinkParams{Latency: time.Millisecond})
	if !f.Send(1, 2, "hello") {
		t.Fatal("Send failed")
	}
	select {
	case env := <-got:
		if env.From != 1 || env.Payload.(string) != "hello" {
			t.Fatalf("got %+v", env)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery timed out")
	}
}

func TestFabricNoRoute(t *testing.T) {
	f := NewFabric(1)
	defer f.Close()
	f.Register(1, HandlerFunc(func(Envelope) {}))
	if f.Send(1, 99, "x") {
		t.Fatal("send without route succeeded")
	}
}

func TestFabricLoss(t *testing.T) {
	f := NewFabric(7)
	defer f.Close()
	var mu sync.Mutex
	n := 0
	f.Register(1, HandlerFunc(func(Envelope) {}))
	f.Register(2, HandlerFunc(func(Envelope) { mu.Lock(); n++; mu.Unlock() }))
	f.Connect(1, 2, LinkParams{Loss: 1.0})
	for i := 0; i < 50; i++ {
		f.Send(1, 2, i)
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if n != 0 {
		t.Fatalf("loss=1.0 delivered %d", n)
	}
}

// TestFabricCloseJoinsDelayedSends: Close must stop (or join) every
// latency-delayed delivery — no envelope may be handed to a handler
// after Close returns, and no fabric goroutine (inbox or delivery
// timer) may outlive it.
func TestFabricCloseJoinsDelayedSends(t *testing.T) {
	before := stdruntime.NumGoroutine()
	f := NewFabric(5)
	var delivered atomic.Int64
	f.Register(1, HandlerFunc(func(Envelope) {}))
	f.Register(2, HandlerFunc(func(Envelope) { delivered.Add(1) }))
	f.Connect(1, 2, LinkParams{Latency: 30 * time.Millisecond})
	for i := 0; i < 200; i++ {
		if !f.Send(1, 2, i) {
			t.Fatal("send failed")
		}
	}
	f.Close() // long before the 30ms deliveries are due
	atClose := delivered.Load()
	time.Sleep(60 * time.Millisecond) // past every armed timer
	if late := delivered.Load(); late != atClose {
		t.Fatalf("%d deliveries happened after Close returned", late-atClose)
	}
	// All inbox and timer goroutines must be gone. Poll briefly: the
	// runtime's own bookkeeping goroutines settle asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := stdruntime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines outlive Close: %d, baseline %d", stdruntime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Sends attempted after Close must not arm new timers.
	if f.Send(1, 2, "late") {
		t.Fatal("send after Close succeeded")
	}
}

func TestFabricCloseIdempotent(t *testing.T) {
	f := NewFabric(1)
	f.Register(1, HandlerFunc(func(Envelope) {}))
	f.Close()
	f.Close()
	if f.Send(1, 1, "x") {
		t.Fatal("send after close succeeded")
	}
}

// liveRec is one observed delivery.
type liveRec struct {
	g seq.GlobalSeq
	o seq.NodeID
}

// runLiveRing drives a live ring over the given link with concurrent
// bursty producers until every member's front reaches the total, then
// returns each member's delivery stream and its shared delivery-order
// digest (metrics.OrderHash via HashDeliverer).
func runLiveRing(t *testing.T, seed int64, link LinkParams, members []seq.NodeID, perProducer int) (map[seq.NodeID][]liveRec, map[seq.NodeID]*metrics.OrderHash) {
	t.Helper()
	f := NewFabric(seed)
	defer f.Close()

	var mu sync.Mutex
	streams := make(map[seq.NodeID][]liveRec)
	hashes := make(map[seq.NodeID]*metrics.OrderHash)
	deliverers := make(map[seq.NodeID]Deliverer)
	for _, id := range members {
		id := id
		hashes[id] = metrics.NewOrderHash()
		deliverers[id] = HashDeliverer(hashes[id], func(g seq.GlobalSeq, origin seq.NodeID, payload []byte) {
			mu.Lock()
			streams[id] = append(streams[id], liveRec{g, origin})
			mu.Unlock()
		})
	}
	ring := NewRing(f, members, link, deliverers)
	ring.Start()

	// Concurrent producers: one goroutine per member, bursty.
	var wg sync.WaitGroup
	for _, id := range members {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				ring.Submit(id, []byte{byte(id), byte(i)})
				if i%10 == 9 {
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()

	total := seq.GlobalSeq(len(members) * perProducer)
	deadline := time.Now().Add(10 * time.Second)
	for {
		fronts := ring.Fronts()
		done := true
		for _, fr := range fronts {
			if fr < total {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring did not converge: fronts %v (want %d)", fronts, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	return streams, hashes
}

// assertLiveStreamsAgree checks the reference stream is gap-free and all
// members delivered the identical totally-ordered stream (record-level
// and digest-level, since the digest is what multi-process harnesses
// compare).
func assertLiveStreamsAgree(t *testing.T, members []seq.NodeID, total int, streams map[seq.NodeID][]liveRec, hashes map[seq.NodeID]*metrics.OrderHash) {
	t.Helper()
	ref := streams[members[0]]
	if len(ref) != total {
		t.Fatalf("member %v delivered %d, want %d", members[0], len(ref), total)
	}
	for i, r := range ref {
		if r.g != seq.GlobalSeq(i+1) {
			t.Fatalf("member %v stream not gap-free at %d: %+v", members[0], i, r)
		}
	}
	for _, id := range members[1:] {
		s := streams[id][:total]
		for i := range ref {
			if s[i] != ref[i] {
				t.Fatalf("member %v diverged at %d: %+v vs %+v", id, i, s[i], ref[i])
			}
		}
		if hashes[id].Sum64() != hashes[members[0]].Sum64() {
			t.Fatalf("member %v delivery digest %#x != member %v digest %#x",
				id, hashes[id].Sum64(), members[0], hashes[members[0]].Sum64())
		}
	}
}

// TestLiveRingTotalOrder runs the wall-clock token ring with concurrent
// producer goroutines and asserts every member delivered the identical
// totally-ordered stream. Run with -race.
func TestLiveRingTotalOrder(t *testing.T) {
	members := []seq.NodeID{1, 2, 3, 4}
	const perProducer = 50
	streams, hashes := runLiveRing(t, 42, LinkParams{Latency: 200 * time.Microsecond}, members, perProducer)
	assertLiveStreamsAgree(t, members, len(members)*perProducer, streams, hashes)
}

// TestLiveRingJitterReordering adds heavy per-message jitter — ten times
// the base latency — so the fabric's timer-based deliveries genuinely
// reorder in flight (token passes overtake data, data overtakes data).
// The contiguous-drain reassembly must still deliver the identical
// gap-free total order at every member. (Loss stays zero: the live ring
// demonstrates ordering; recovery machinery lives in the engine and is
// exercised over real sockets by internal/wire.)
func TestLiveRingJitterReordering(t *testing.T) {
	members := []seq.NodeID{1, 2, 3, 4}
	const perProducer = 50
	link := LinkParams{Latency: 200 * time.Microsecond, Jitter: 2 * time.Millisecond}
	streams, hashes := runLiveRing(t, 99, link, members, perProducer)
	assertLiveStreamsAgree(t, members, len(members)*perProducer, streams, hashes)
}

func TestLiveRingSingleton(t *testing.T) {
	f := NewFabric(3)
	defer f.Close()
	var mu sync.Mutex
	var got []seq.GlobalSeq
	ring := NewRing(f, []seq.NodeID{9}, LinkParams{}, map[seq.NodeID]Deliverer{
		9: func(g seq.GlobalSeq, o seq.NodeID, p []byte) {
			mu.Lock()
			got = append(got, g)
			mu.Unlock()
		},
	})
	ring.Start()
	for i := 0; i < 20; i++ {
		ring.Submit(9, []byte("x"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("singleton delivered %d/20", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !ring.Submit(99, nil) == false {
		t.Fatal("submit to unknown member should fail")
	}
}
