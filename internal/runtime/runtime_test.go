package runtime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/seq"
)

func TestFabricDelivery(t *testing.T) {
	f := NewFabric(1)
	defer f.Close()
	got := make(chan Envelope, 10)
	f.Register(1, HandlerFunc(func(env Envelope) {}))
	f.Register(2, HandlerFunc(func(env Envelope) { got <- env }))
	f.Connect(1, 2, LinkParams{Latency: time.Millisecond})
	if !f.Send(1, 2, "hello") {
		t.Fatal("Send failed")
	}
	select {
	case env := <-got:
		if env.From != 1 || env.Payload.(string) != "hello" {
			t.Fatalf("got %+v", env)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery timed out")
	}
}

func TestFabricNoRoute(t *testing.T) {
	f := NewFabric(1)
	defer f.Close()
	f.Register(1, HandlerFunc(func(Envelope) {}))
	if f.Send(1, 99, "x") {
		t.Fatal("send without route succeeded")
	}
}

func TestFabricLoss(t *testing.T) {
	f := NewFabric(7)
	defer f.Close()
	var mu sync.Mutex
	n := 0
	f.Register(1, HandlerFunc(func(Envelope) {}))
	f.Register(2, HandlerFunc(func(Envelope) { mu.Lock(); n++; mu.Unlock() }))
	f.Connect(1, 2, LinkParams{Loss: 1.0})
	for i := 0; i < 50; i++ {
		f.Send(1, 2, i)
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if n != 0 {
		t.Fatalf("loss=1.0 delivered %d", n)
	}
}

func TestFabricCloseIdempotent(t *testing.T) {
	f := NewFabric(1)
	f.Register(1, HandlerFunc(func(Envelope) {}))
	f.Close()
	f.Close()
	if f.Send(1, 1, "x") {
		t.Fatal("send after close succeeded")
	}
}

// TestLiveRingTotalOrder runs the wall-clock token ring with concurrent
// producer goroutines and asserts every member delivered the identical
// totally-ordered stream. Run with -race.
func TestLiveRingTotalOrder(t *testing.T) {
	f := NewFabric(42)
	defer f.Close()

	members := []seq.NodeID{1, 2, 3, 4}
	type rec struct {
		g seq.GlobalSeq
		o seq.NodeID
	}
	var mu sync.Mutex
	streams := make(map[seq.NodeID][]rec)
	deliverers := make(map[seq.NodeID]Deliverer)
	for _, id := range members {
		id := id
		deliverers[id] = func(g seq.GlobalSeq, origin seq.NodeID, payload []byte) {
			mu.Lock()
			streams[id] = append(streams[id], rec{g, origin})
			mu.Unlock()
		}
	}
	ring := NewRing(f, members, LinkParams{Latency: 200 * time.Microsecond}, deliverers)
	ring.Start()

	// Concurrent producers: one goroutine per member, bursty.
	const perProducer = 50
	var wg sync.WaitGroup
	for _, id := range members {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				ring.Submit(id, []byte{byte(id), byte(i)})
				if i%10 == 9 {
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()

	total := seq.GlobalSeq(len(members) * perProducer)
	deadline := time.Now().Add(10 * time.Second)
	for {
		fronts := ring.Fronts()
		done := true
		for _, fr := range fronts {
			if fr < total {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring did not converge: fronts %v (want %d)", fronts, total)
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	ref := streams[members[0]]
	if len(ref) != int(total) {
		t.Fatalf("member 1 delivered %d, want %d", len(ref), total)
	}
	for i, r := range ref {
		if r.g != seq.GlobalSeq(i+1) {
			t.Fatalf("member 1 stream not gap-free at %d: %+v", i, r)
		}
	}
	for _, id := range members[1:] {
		s := streams[id][:total]
		for i := range ref {
			if s[i] != ref[i] {
				t.Fatalf("member %v diverged at %d: %+v vs %+v", id, i, s[i], ref[i])
			}
		}
	}
}

func TestLiveRingSingleton(t *testing.T) {
	f := NewFabric(3)
	defer f.Close()
	var mu sync.Mutex
	var got []seq.GlobalSeq
	ring := NewRing(f, []seq.NodeID{9}, LinkParams{}, map[seq.NodeID]Deliverer{
		9: func(g seq.GlobalSeq, o seq.NodeID, p []byte) {
			mu.Lock()
			got = append(got, g)
			mu.Unlock()
		},
	})
	ring.Start()
	for i := 0; i < 20; i++ {
		ring.Submit(9, []byte("x"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("singleton delivered %d/20", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !ring.Submit(99, nil) == false {
		t.Fatal("submit to unknown member should fail")
	}
}
