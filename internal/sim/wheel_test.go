package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// wheelSpan is the virtual-time width of the wheel window; delays beyond
// it exercise the overflow heap and the promotion path.
const wheelSpan = wheelSlots << slotShift

// refEvent is one scheduled callback in the reference model: a plain
// sorted-slice scheduler that fires in exact (at, seq) order.
type refEvent struct {
	at    Time
	seq   uint64
	id    int
	timer Timer
}

// TestDifferentialScheduler drives the calendar-queue scheduler and a
// naive sorted-list reference through random schedule/stop/run
// interleavings and requires the exact same firing sequence. Delays are
// drawn across the wheel horizon so events cross the bucket/overflow
// boundary in both directions, and a bias toward slot-width multiples
// exercises exact-boundary placement. Timers are stopped both before and
// after the cursor has advanced past them, covering cancellation in
// buckets, the slot heap, and the overflow heap.
func TestDifferentialScheduler(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		var pending []refEvent // model: live events, unordered
		var gotIDs, wantIDs []int
		var stale []Timer // handles whose events fired or were stopped
		nextID := 0
		seqNo := uint64(0)

		fire := func(id int) func() {
			return func() { gotIDs = append(gotIDs, id) }
		}
		schedule := func() {
			var d Time
			switch rng.Intn(4) {
			case 0: // inside the wheel
				d = Time(rng.Int63n(wheelSpan))
			case 1: // straddling the horizon
				d = wheelSpan - 256 + Time(rng.Int63n(512))
			case 2: // deep overflow
				d = wheelSpan + Time(rng.Int63n(4*wheelSpan))
			default: // exact slot boundaries, including zero delay
				d = Time(rng.Int63n(4)) * (1 << slotShift) * Time(rng.Int63n(wheelSlots))
			}
			id := nextID
			nextID++
			tm := s.After(d, fire(id))
			pending = append(pending, refEvent{at: s.Now() + d, seq: seqNo, id: id, timer: tm})
			seqNo++
		}

		runRef := func(until Time) {
			sort.Slice(pending, func(i, j int) bool {
				if pending[i].at != pending[j].at {
					return pending[i].at < pending[j].at
				}
				return pending[i].seq < pending[j].seq
			})
			kept := pending[:0]
			for _, e := range pending {
				if e.at <= until {
					wantIDs = append(wantIDs, e.id)
					stale = append(stale, e.timer)
					continue
				}
				kept = append(kept, e)
			}
			pending = kept
		}

		for step := 0; step < 300; step++ {
			switch op := rng.Intn(10); {
			case op < 5:
				for i := rng.Intn(8); i >= 0; i-- {
					schedule()
				}
			case op < 7 && len(pending) > 0:
				// Stop a random live timer; mirror in the model.
				i := rng.Intn(len(pending))
				if !pending[i].timer.Stop() {
					t.Fatalf("seed %d step %d: Stop on live timer returned false", seed, step)
				}
				stale = append(stale, pending[i].timer)
				pending = append(pending[:i], pending[i+1:]...)
			case op < 8 && len(stale) > 0:
				// Stale handles must stay inert across recycling.
				i := rng.Intn(len(stale))
				if stale[i].Stop() || stale[i].Pending() {
					t.Fatalf("seed %d step %d: stale handle still active", seed, step)
				}
			default:
				until := s.Now() + Time(rng.Int63n(2*wheelSpan))
				if _, err := s.Run(until); err != nil {
					t.Fatal(err)
				}
				runRef(until)
			}
			// The live count must track the model continuously.
			if s.Len() != len(pending) {
				t.Fatalf("seed %d step %d: Len=%d, model %d", seed, step, s.Len(), len(pending))
			}
		}
		if _, err := s.RunAll(); err != nil {
			t.Fatal(err)
		}
		runRef(Time(1) << 60)

		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("seed %d: fired %d events, model %d", seed, len(gotIDs), len(wantIDs))
		}
		for i := range gotIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("seed %d: firing order diverges at %d: got id %d, want id %d",
					seed, i, gotIDs[i], wantIDs[i])
			}
		}
	}
}

// TestWheelHorizonBoundary pins exact placement at the overflow horizon:
// an event exactly at curSlot+wheelSlots slots ahead must still fire in
// (time, seq) order relative to wheel residents scheduled around it.
func TestWheelHorizonBoundary(t *testing.T) {
	s := NewScheduler()
	var got []int
	span := Time(wheelSpan)
	s.At(span, func() { got = append(got, 2) })     // exactly at the horizon → overflow
	s.At(span-1, func() { got = append(got, 1) })   // last wheel slot
	s.At(span+1, func() { got = append(got, 3) })   // overflow
	s.At(span, func() { got = append(got, 4) })     // same time as #2, later seq
	s.At(2*span+5, func() { got = append(got, 5) }) // deep overflow
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestStopAcrossPromotion cancels an overflow-resident timer, lets the
// cursor advance so the (dead) event is promoted and recycled, and checks
// the stale handle stays inert through the recycle and re-arm.
func TestStopAcrossPromotion(t *testing.T) {
	s := NewScheduler()
	fired := 0
	far := s.After(3*wheelSpan, func() { fired += 100 }) // overflow
	s.After(1, func() { fired++ })
	if !far.Stop() {
		t.Fatal("Stop on pending overflow timer returned false")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after Stop", s.Len())
	}
	// Walk the cursor across several horizons so the dead event is
	// promoted/recycled, then re-arm timers that reuse its struct.
	s.After(4*wheelSpan, func() { fired += 10 })
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 11 {
		t.Fatalf("fired = %d, want 11 (stopped overflow timer ran?)", fired)
	}
	if far.Stop() || far.Pending() {
		t.Fatal("stale overflow handle still active after recycle")
	}
}

// TestStopDuringSlotDrain stops an event that has already been migrated
// into the current-slot heap (same slot, later time) from a callback in
// the same slot.
func TestStopDuringSlotDrain(t *testing.T) {
	s := NewScheduler()
	var got []int
	var victim Timer
	s.At(2, func() {
		got = append(got, 1)
		if !victim.Stop() {
			t.Fatal("victim not pending")
		}
		// Schedule into the slot currently being drained.
		s.At(5, func() { got = append(got, 3) })
	})
	victim = s.At(10, func() { got = append(got, 2) })
	s.At(20, func() { got = append(got, 4) })
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

// TestLiveCountAtRecycleBoundaries pins the live-event accounting across
// the stop→recycle→re-arm cycle: a stopped event is decremented exactly
// once no matter which structure (bucket, slot heap, overflow) recycles
// it, and a recycled struct re-armed under a new generation is counted as
// a fresh event.
func TestLiveCountAtRecycleBoundaries(t *testing.T) {
	s := NewScheduler()
	// Fill the freelist through a fire.
	s.After(1, func() {})
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain", s.Len())
	}
	// Stop in bucket (never migrated): schedule far ahead in the wheel,
	// stop, then drain.
	tw := s.After(wheelSpan/2, func() { t.Fatal("stopped wheel event fired") })
	to := s.After(2*wheelSpan, func() { t.Fatal("stopped overflow event fired") })
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !tw.Stop() || !to.Stop() {
		t.Fatal("Stop failed")
	}
	if tw.Stop() || to.Stop() {
		t.Fatal("double Stop succeeded")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0 after stops", s.Len())
	}
	// Draining recycles the dead events; Len must not go negative or
	// double-decrement when they are encountered.
	if _, err := s.Run(4 * wheelSpan); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0 after drain of dead events", s.Len())
	}
	// Re-arm: recycled structs come back with a fresh generation.
	fired := 0
	t3 := s.After(1, func() { fired++ })
	if s.Len() != 1 || !t3.Pending() {
		t.Fatalf("Len = %d, pending=%v", s.Len(), t3.Pending())
	}
	if tw.Pending() || to.Pending() || tw.Stop() || to.Stop() {
		t.Fatal("stale handles affect recycled events")
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 || s.Len() != 0 {
		t.Fatalf("fired=%d Len=%d", fired, s.Len())
	}
}
