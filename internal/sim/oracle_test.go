package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// This file keeps the seed's container/heap scheduler alive as an
// ordering oracle: the calendar-queue scheduler must execute nested,
// self-scheduling, self-cancelling workloads in the byte-identical
// (time, seq) order the original binary heap produced. Simulator trace
// stability across the queue-discipline swap rests on this equivalence.

// oldEvent/oldHeap/oldSched replicate the seed container/heap scheduler
// as the ordering oracle.
type oldEvent struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

type oldHeap []*oldEvent

func (h oldHeap) Len() int { return len(h) }
func (h oldHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oldHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *oldHeap) Push(x any) {
	ev := x.(*oldEvent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *oldHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type oldSched struct {
	now    Time
	seq    uint64
	events oldHeap
}

func (s *oldSched) At(at Time, fn func()) *oldEvent {
	if at < s.now {
		at = s.now
	}
	ev := &oldEvent{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

func (s *oldSched) Run(until Time) {
	for len(s.events) > 0 {
		ev := s.events[0]
		if ev.dead {
			heap.Pop(&s.events)
			continue
		}
		if ev.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = ev.at
		ev.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// script decides, deterministically per event id, what an event does when
// it fires: schedule children and/or stop previously created events.
type action struct {
	children []Time // delays
	stops    []int  // ids to stop
}

func makeScript(seed int64, n int) []action {
	rng := rand.New(rand.NewSource(seed))
	out := make([]action, n)
	for i := range out {
		a := &out[i]
		for k := rng.Intn(3); k > 0; k-- {
			var d Time
			switch rng.Intn(5) {
			case 0:
				d = 0
			case 1:
				d = Time(rng.Int63n(64)) // same slot-ish
			case 2:
				d = Time(rng.Int63n(wheelSpan))
			case 3:
				d = wheelSpan - 64 + Time(rng.Int63n(128))
			default:
				d = Time(rng.Int63n(3 * wheelSpan))
			}
			a.children = append(a.children, d)
		}
		for k := rng.Intn(2); k > 0; k-- {
			a.stops = append(a.stops, rng.Intn(n))
		}
	}
	return out
}

func TestNestedDifferential(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		const n = 4000
		script := makeScript(seed, n)

		runNew := func() []int {
			s := NewScheduler()
			var order []int
			timers := map[int]Timer{}
			next := 0
			var fire func(id int) func()
			fire = func(id int) func() {
				return func() {
					order = append(order, id)
					a := script[id%len(script)]
					for _, d := range a.children {
						if next >= n {
							break
						}
						id2 := next
						next++
						timers[id2] = s.After(d, fire(id2))
					}
					for _, sid := range a.stops {
						if tm, ok := timers[sid]; ok {
							tm.Stop()
						}
					}
				}
			}
			for i := 0; i < 20 && next < n; i++ {
				id := next
				next++
				timers[id] = s.After(Time(i*37), fire(id))
			}
			rng := rand.New(rand.NewSource(seed + 1000))
			for s.Len() > 0 {
				s.Run(s.now + Time(rng.Int63n(wheelSpan)))
			}
			return order
		}

		runOld := func() []int {
			s := &oldSched{}
			var order []int
			timers := map[int]*oldEvent{}
			next := 0
			var fire func(id int) func()
			fire = func(id int) func() {
				return func() {
					order = append(order, id)
					a := script[id%len(script)]
					for _, d := range a.children {
						if next >= n {
							break
						}
						id2 := next
						next++
						timers[id2] = s.At(s.now+d, fire(id2))
					}
					for _, sid := range a.stops {
						if ev, ok := timers[sid]; ok && !ev.dead {
							ev.dead = true
						}
					}
				}
			}
			for i := 0; i < 20 && next < n; i++ {
				id := next
				next++
				timers[id] = s.At(Time(i*37), fire(id))
			}
			rng := rand.New(rand.NewSource(seed + 1000))
			live := func() int {
				c := 0
				for _, ev := range s.events {
					if !ev.dead {
						c++
					}
				}
				return c
			}
			for live() > 0 {
				s.Run(s.now + Time(rng.Int63n(wheelSpan)))
			}
			return order
		}

		a, b := runNew(), runOld()
		if len(a) != len(b) {
			t.Fatalf("seed %d: new fired %d, old fired %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: order diverges at %d: new=%d old=%d", seed, i, a[i], b[i])
			}
		}
	}
}
