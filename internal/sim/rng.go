package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). Every stochastic element of a simulation draws from one
// RNG seeded by the scenario, so runs are reproducible from the seed.
// The zero value is a valid generator with seed 0.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fork derives an independent generator from r, consuming one draw.
// Forked streams let subsystems (loss, mobility, workload) draw
// independently without interleaving effects.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Duration returns a uniform Time in [lo, hi]. It panics if hi < lo.
func (r *RNG) Duration(lo, hi Time) Time {
	if hi < lo {
		panic("sim: Duration with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + Time(r.Int63n(int64(hi-lo)+1))
}

// ExpDuration returns an exponentially distributed Time with mean m,
// clamped to at least 1 microsecond.
func (r *RNG) ExpDuration(m Time) Time {
	d := Time(r.Exp(float64(m)))
	if d < 1 {
		d = 1
	}
	return d
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
