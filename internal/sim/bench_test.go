package sim

import "testing"

func BenchmarkSchedulerChain(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			s.After(1, step)
		}
	}
	s.After(1, step)
	if _, err := s.RunAll(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSchedulerFanOut(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(Time(i%1000), func() {})
		if i%1000 == 999 {
			if _, err := s.RunAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := s.RunAll(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkTimerStopChurn(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := s.After(1000, func() {})
		t.Stop()
		if i%4096 == 4095 {
			// Drain the cancelled events.
			if _, err := s.RunAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
