package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchedulerZeroValue(t *testing.T) {
	var s Scheduler
	if s.Now() != 0 {
		t.Fatalf("zero scheduler Now = %v, want 0", s.Now())
	}
	if s.Len() != 0 {
		t.Fatalf("zero scheduler Len = %d, want 0", s.Len())
	}
	if s.Step() {
		t.Fatal("Step on empty scheduler returned true")
	}
}

func TestEventOrderByTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("execution order = %v, want %v", got, want)
	}
	if s.Now() != 30 {
		t.Fatalf("final time = %v, want 30", s.Now())
	}
}

func TestEventTieBreakByInsertion(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order = %v, want insertion order", got)
		}
	}
}

func TestAfterClampsNegative(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-5, func() { fired = true })
	s.Step()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved backwards: %v", s.Now())
	}
}

func TestAtPastClampsToNow(t *testing.T) {
	s := NewScheduler()
	s.At(100, func() {})
	s.Step()
	fired := Time(-1)
	s.At(50, func() { fired = s.Now() })
	s.Step()
	if fired != 100 {
		t.Fatalf("past event fired at %v, want clamped to 100", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.After(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.After(1, func() {})
	s.Step()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	n, err := s.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Run(12) executed %d events, want 2", n)
	}
	if s.Now() != 12 {
		t.Fatalf("Now after Run(12) = %v, want 12", s.Now())
	}
	n, err = s.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("second Run executed %d events, want 2", n)
	}
}

func TestRunAdvancesClockWhenEmpty(t *testing.T) {
	s := NewScheduler()
	if _, err := s.Run(500); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 500 {
		t.Fatalf("Now = %v, want 500", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 100 {
			s.After(1, schedule)
		}
	}
	s.After(1, schedule)
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if s.Now() != 100 {
		t.Fatalf("Now = %v, want 100", s.Now())
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	count := 0
	tk := s.Every(10, func() {
		count++
		if count == 5 {
			s.Stop()
		}
	})
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("ticker fired %d times, want 5", count)
	}
	if s.Now() != 50 {
		t.Fatalf("Now = %v, want 50", s.Now())
	}
	tk.Stop()
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("stopped ticker fired again: %d", count)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tk *Ticker
	tk = s.Every(1, func() {
		count++
		tk.Stop()
	})
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("ticker fired %d times after Stop inside callback, want 1", count)
	}
}

func TestEventBudget(t *testing.T) {
	s := NewScheduler()
	s.MaxEvents = 10
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	_, err := s.RunAll()
	if err != ErrEventBudget {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
}

func TestStopInsideRun(t *testing.T) {
	s := NewScheduler()
	ran := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {
			ran++
			if ran == 3 {
				s.Stop()
			}
		})
	}
	n, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Run executed %d events, want 3 (stopped)", n)
	}
	// A subsequent run resumes.
	n, err = s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("resumed Run executed %d, want 7", n)
	}
}

func TestTimeString(t *testing.T) {
	if got := (Time(1500000)).String(); got != "1.500000s" {
		t.Fatalf("Time.String = %q", got)
	}
	if got := (Time(42)).Seconds(); math.Abs(got-42e-6) > 1e-12 {
		t.Fatalf("Seconds = %v", got)
	}
}

func TestQuickEventsAlwaysSorted(t *testing.T) {
	// Property: for any set of schedule times, execution order is the
	// sorted order of the (clamped) times.
	f := func(raw []int16) bool {
		s := NewScheduler()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			if at < 0 {
				at = 0
			}
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		if _, err := s.RunAll(); err != nil {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolFrequency(t *testing.T) {
	r := NewRNG(5)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	freq := float64(hits) / float64(n)
	if math.Abs(freq-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %v", freq)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp(5) sample mean = %v", mean)
	}
}

func TestRNGDuration(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		d := r.Duration(10, 20)
		if d < 10 || d > 20 {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if r.Duration(7, 7) != 7 {
		t.Fatal("Duration with lo==hi")
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(99)
	a := r.Fork()
	b := r.Fork()
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams identical")
	}
}

func TestQuickRNGDurationInRange(t *testing.T) {
	f := func(seed uint64, lo, span uint16) bool {
		r := NewRNG(seed)
		l := Time(lo)
		h := l + Time(span)
		d := r.Duration(l, h)
		return d >= l && d <= h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLenConstantTime(t *testing.T) {
	s := NewScheduler()
	if s.Len() != 0 {
		t.Fatal("empty Len")
	}
	t1 := s.After(10, func() {})
	s.After(20, func() {})
	t3 := s.After(30, func() {})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !t1.Stop() {
		t.Fatal("Stop failed")
	}
	if s.Len() != 2 {
		t.Fatalf("Len after Stop = %d, want 2", s.Len())
	}
	if t1.Stop() {
		t.Fatal("double Stop succeeded")
	}
	s.Step()
	if s.Len() != 1 {
		t.Fatalf("Len after Step = %d, want 1", s.Len())
	}
	if !t3.Pending() {
		t.Fatal("t3 should be pending")
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", s.Len())
	}
	if t3.Pending() {
		t.Fatal("t3 still pending after drain")
	}
}

func TestAtCallDispatch(t *testing.T) {
	s := NewScheduler()
	got := make([]int, 0, 3)
	record := func(v any) { got = append(got, v.(int)) }
	s.AtCall(5, record, 1)
	s.AfterCall(10, record, 2)
	tm := s.AtCall(7, record, 99)
	tm.Stop()
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

// TestRecycledEventTimerSafety pins the generation discipline: a Timer
// handle for a fired event must stay inert even after the event struct is
// recycled into a new scheduling.
func TestRecycledEventTimerSafety(t *testing.T) {
	s := NewScheduler()
	fired := 0
	t1 := s.After(1, func() { fired++ })
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	// The event backing t1 is now on the freelist; reschedule reuses it.
	t2 := s.After(1, func() { fired++ })
	if t1.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if t1.Stop() {
		t.Fatal("stale handle stopped the recycled event")
	}
	if !t2.Pending() {
		t.Fatal("fresh handle should be pending")
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}
