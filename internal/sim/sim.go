// Package sim provides a deterministic discrete-event simulation kernel.
//
// All protocol logic in this repository runs on virtual time supplied by a
// Scheduler. Events are executed in (time, sequence) order, so two runs
// with the same seed and the same workload produce byte-identical traces.
// Virtual time is measured in microseconds (Time).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is virtual time in microseconds since the start of the simulation.
type Time int64

// Common durations, in virtual microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
)

// String renders a Time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%06ds", int64(t)/1e6, int64(t)%1e6)
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Event is a scheduled callback: either a plain closure fn, or a static
// function fnc applied to arg (the closure-free form used by hot paths to
// avoid allocating a closure per event).
type event struct {
	at   Time
	seq  uint64 // tie-breaker: insertion order
	fn   func()
	fnc  func(any)
	arg  any
	gen  uint64 // incremented on recycle; detects stale Timer handles
	dead bool   // cancelled
	idx  int    // heap index
}

// Timer is a handle to a scheduled event that may be cancelled. The zero
// Timer is valid and behaves as already-fired. Timers are values: they
// carry the event's generation so a recycled event is never confused with
// the one the handle was issued for.
type Timer struct {
	ev  *event
	s   *Scheduler
	gen uint64
}

// Stop cancels the timer. It reports whether the timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	t.ev.fnc = nil
	t.ev.arg = nil
	t.s.live--
	return true
}

// Pending reports whether the timer has neither fired nor been stopped.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && !t.ev.dead
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a discrete-event executor over virtual time.
// The zero value is ready to use.
type Scheduler struct {
	now     Time
	seq     uint64
	events  eventHeap
	running bool
	stopped bool
	// live counts pending non-cancelled events so Len is O(1): it is
	// incremented on schedule and decremented on fire or Stop.
	live int
	// free recycles fired/cancelled events; generations on the events
	// keep outstanding Timer handles from resurrecting them.
	free []*event
	// Executed counts events that have run, for progress reporting and
	// runaway detection.
	Executed uint64
	// MaxEvents, when non-zero, aborts Run with ErrEventBudget once
	// Executed exceeds it.
	MaxEvents uint64
}

// ErrEventBudget is returned by Run when MaxEvents is exhausted.
var ErrEventBudget = errors.New("sim: event budget exhausted")

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending (non-cancelled) events.
func (s *Scheduler) Len() int { return s.live }

// alloc takes an event from the freelist or allocates a fresh one.
func (s *Scheduler) alloc(at Time) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.dead = false
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = s.seq
	s.seq++
	s.live++
	heap.Push(&s.events, ev)
	return ev
}

// recycle returns a popped event to the freelist for reuse.
func (s *Scheduler) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.fnc = nil
	ev.arg = nil
	s.free = append(s.free, ev)
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past is clamped to the present. It returns a cancellable Timer.
func (s *Scheduler) At(at Time, fn func()) Timer {
	if fn == nil {
		panic("sim: nil event function")
	}
	if at < s.now {
		at = s.now
	}
	ev := s.alloc(at)
	ev.fn = fn
	return Timer{ev: ev, s: s, gen: ev.gen}
}

// After schedules fn to run delay from now. Negative delays are clamped.
func (s *Scheduler) After(delay Time, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// AtCall schedules fn(arg) at absolute virtual time at. Unlike At it
// needs no closure: with a static fn and a pointer-shaped arg, scheduling
// is allocation-free (events themselves are recycled), which matters on
// the per-message hot paths.
func (s *Scheduler) AtCall(at Time, fn func(any), arg any) Timer {
	if fn == nil {
		panic("sim: nil event function")
	}
	if at < s.now {
		at = s.now
	}
	ev := s.alloc(at)
	ev.fnc = fn
	ev.arg = arg
	return Timer{ev: ev, s: s, gen: ev.gen}
}

// AfterCall schedules fn(arg) delay from now. Negative delays are clamped.
func (s *Scheduler) AfterCall(delay Time, fn func(any), arg any) Timer {
	if delay < 0 {
		delay = 0
	}
	return s.AtCall(s.now+delay, fn, arg)
}

// Every schedules fn to run periodically with the given period, starting
// one period from now. Stop the returned Ticker to cancel. period must be
// positive.
func (s *Scheduler) Every(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker repeatedly schedules a callback until stopped.
type Ticker struct {
	s       *Scheduler
	period  Time
	fn      func()
	timer   Timer
	stopped bool
}

func (t *Ticker) arm() {
	t.timer = t.s.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Step executes the single next pending event, if any, advancing the
// clock. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.dead {
			s.recycle(ev)
			continue
		}
		s.now = ev.at
		ev.dead = true
		fn, fnc, arg := ev.fn, ev.fnc, ev.arg
		s.recycle(ev)
		s.live--
		s.Executed++
		if fn != nil {
			fn()
		} else {
			fnc(arg)
		}
		return true
	}
	return false
}

// Run executes events until no events remain or the clock passes until.
// Events scheduled exactly at until are executed. It returns the number of
// events executed and an error only if the event budget was exhausted.
func (s *Scheduler) Run(until Time) (int, error) {
	if s.running {
		panic("sim: re-entrant Run")
	}
	s.running = true
	defer func() { s.running = false }()
	n := 0
	for len(s.events) > 0 {
		// Peek without popping cancelled events eagerly.
		ev := s.events[0]
		if ev.dead {
			heap.Pop(&s.events)
			s.recycle(ev)
			continue
		}
		if ev.at > until {
			break
		}
		s.Step()
		n++
		if s.MaxEvents != 0 && s.Executed > s.MaxEvents {
			return n, ErrEventBudget
		}
		if s.stopped {
			s.stopped = false
			break
		}
	}
	// Advance the clock to until so repeated Run calls observe
	// monotonic time even when the event queue drains early.
	if s.now < until {
		s.now = until
	}
	return n, nil
}

// RunAll executes events until the queue drains. Use MaxEvents to bound
// runaway simulations.
func (s *Scheduler) RunAll() (int, error) {
	n := 0
	for {
		if !s.Step() {
			return n, nil
		}
		n++
		if s.MaxEvents != 0 && s.Executed > s.MaxEvents {
			return n, ErrEventBudget
		}
		if s.stopped {
			s.stopped = false
			return n, nil
		}
	}
}

// Stop makes the innermost Run/RunAll return after the current event.
func (s *Scheduler) Stop() { s.stopped = true }
