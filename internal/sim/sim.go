// Package sim provides a deterministic discrete-event simulation kernel.
//
// All protocol logic in this repository runs on virtual time supplied by a
// Scheduler. Events are executed in (time, sequence) order, so two runs
// with the same seed and the same workload produce byte-identical traces.
// Virtual time is measured in microseconds (Time).
package sim

import (
	"errors"
	"fmt"
	"math/bits"
)

// Time is virtual time in microseconds since the start of the simulation.
type Time int64

// Common durations, in virtual microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
)

// String renders a Time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%06ds", int64(t)/1e6, int64(t)%1e6)
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Event is a scheduled callback: either a plain closure fn, or a static
// function fnc applied to arg (the closure-free form used by hot paths to
// avoid allocating a closure per event).
type event struct {
	at   Time
	seq  uint64 // tie-breaker: insertion order
	fn   func()
	fnc  func(any)
	arg  any
	gen  uint64 // incremented on recycle; detects stale Timer handles
	dead bool   // cancelled
}

// less is the scheduler's total execution order.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Timer is a handle to a scheduled event that may be cancelled. The zero
// Timer is valid and behaves as already-fired. Timers are values: they
// carry the event's generation so a recycled event is never confused with
// the one the handle was issued for.
type Timer struct {
	ev  *event
	s   *Scheduler
	gen uint64
}

// Stop cancels the timer. It reports whether the timer was still pending.
// Cancellation is lazy: the event stays in whatever queue structure holds
// it (wheel bucket, current-slot heap, or overflow heap) and is recycled
// when the scheduler next encounters it.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	t.ev.fnc = nil
	t.ev.arg = nil
	t.s.live--
	return true
}

// Pending reports whether the timer has neither fired nor been stopped.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && !t.ev.dead
}

// fourHeap is a 4-ary min-heap of events ordered by (at, seq). Compared
// to the binary container/heap it halves the tree depth, avoids the
// interface boxing of heap.Push/Pop, and keeps sift-down children on one
// cache line.
type fourHeap []*event

func (h *fourHeap) push(ev *event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !q[i].less(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *fourHeap) pop() *event {
	q := *h
	n := len(q) - 1
	ev := q[0]
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if q[j].less(q[m]) {
				m = j
			}
		}
		if !q[m].less(q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return ev
}

// Calendar-queue geometry. Near-future events live in a timing wheel of
// wheelSlots buckets, each slotWidth = 2^slotShift microseconds wide, so
// the wheel spans wheelSlots<<slotShift (≈16.4 ms) of virtual time ahead
// of the cursor. Events beyond that horizon wait in the 4-ary overflow
// heap and are promoted into the wheel as the cursor advances. The hot
// protocol delays (per-hop latency, token hold, τ ticks) all land inside
// the wheel; only slow timers (heartbeats, failure windows) touch the
// overflow heap.
const (
	slotShift  = 6 // 64 µs per slot
	wheelSlots = 256
	wheelMask  = wheelSlots - 1
)

// Scheduler is a discrete-event executor over virtual time.
// The zero value is ready to use.
//
// The pending-event store is a calendar queue: a wheel of wheelSlots
// buckets indexed by (at>>slotShift) & wheelMask, an occupancy bitmap for
// O(1) next-slot scans, a small 4-ary heap holding the slot currently
// being drained (exact (time, seq) order within a slot), and a 4-ary
// overflow heap for events past the wheel horizon. All structures order
// events by (at, seq), so execution order is byte-identical to a single
// global priority queue.
type Scheduler struct {
	now     Time
	seq     uint64
	running bool
	stopped bool

	// curSlot is the absolute slot number (at>>slotShift) the cursor is
	// on. Invariant: curSlot <= at>>slotShift for every pending event —
	// the cursor trails the earliest pending event, and new events are
	// clamped to >= now, whose slot the cursor never passes.
	curSlot    int64
	buckets    [wheelSlots][]*event
	occupied   [wheelSlots / 64]uint64 // bitmap: bucket i non-empty
	wheelCount int                     // events stored in buckets
	cur        fourHeap                // events of slot curSlot being drained
	overflow   fourHeap                // events at or past the wheel horizon

	// live counts pending non-cancelled events so Len is O(1): it is
	// incremented on schedule and decremented on fire or Stop.
	live int
	// free recycles fired/cancelled events; generations on the events
	// keep outstanding Timer handles from resurrecting them.
	free []*event
	// Executed counts events that have run, for progress reporting and
	// runaway detection.
	Executed uint64
	// MaxEvents, when non-zero, aborts Run with ErrEventBudget once
	// Executed exceeds it.
	MaxEvents uint64
}

// ErrEventBudget is returned by Run when MaxEvents is exhausted.
var ErrEventBudget = errors.New("sim: event budget exhausted")

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending (non-cancelled) events.
func (s *Scheduler) Len() int { return s.live }

// place files ev into the wheel or the overflow heap. The caller
// guarantees ev.at>>slotShift >= s.curSlot (see the curSlot invariant).
func (s *Scheduler) place(ev *event) {
	abs := int64(ev.at) >> slotShift
	if abs >= s.curSlot+wheelSlots {
		s.overflow.push(ev)
		return
	}
	i := int(abs & wheelMask)
	s.buckets[i] = append(s.buckets[i], ev)
	s.occupied[i>>6] |= 1 << uint(i&63)
	s.wheelCount++
}

// alloc takes an event from the freelist or allocates a fresh one, stamps
// it, and files it into the calendar queue.
func (s *Scheduler) alloc(at Time) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.dead = false
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = s.seq
	s.seq++
	s.live++
	s.place(ev)
	return ev
}

// recycle returns a popped event to the freelist for reuse.
func (s *Scheduler) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.fnc = nil
	ev.arg = nil
	s.free = append(s.free, ev)
}

// migrateCur moves the cursor slot's bucket into the current-slot heap,
// recycling cancelled events on the way. Events scheduled into the slot
// while it is being drained land in the bucket again and are migrated by
// the next pop, so intra-slot (time, seq) order is always exact.
func (s *Scheduler) migrateCur() {
	i := int(s.curSlot & wheelMask)
	if s.occupied[i>>6]&(1<<uint(i&63)) == 0 {
		return
	}
	b := s.buckets[i]
	for j, ev := range b {
		b[j] = nil
		s.wheelCount--
		if ev.dead {
			s.recycle(ev)
			continue
		}
		s.cur.push(ev)
	}
	s.buckets[i] = b[:0]
	s.occupied[i>>6] &^= 1 << uint(i&63)
}

// nextOccupied returns the index of the first occupied bucket at or after
// start in circular order. At least one bucket must be occupied.
func (s *Scheduler) nextOccupied(start int) int {
	w := start >> 6
	mask := ^uint64(0) << uint(start&63)
	for {
		if b := s.occupied[w] & mask; b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
		w = (w + 1) % len(s.occupied)
		mask = ^uint64(0)
	}
}

// advanceTo moves the cursor to absolute slot abs (monotone) and promotes
// overflow events that now fall inside the wheel horizon. Promoted events
// sit at least wheelSlots-1 slots ahead of the old cursor, so they always
// land at or ahead of the new cursor position; place files them into
// their wheel bucket since they are below the new horizon by the loop
// condition.
func (s *Scheduler) advanceTo(abs int64) {
	s.curSlot = abs
	for len(s.overflow) > 0 {
		top := s.overflow[0]
		if int64(top.at)>>slotShift >= abs+wheelSlots {
			break
		}
		s.overflow.pop()
		if top.dead {
			s.recycle(top)
			continue
		}
		s.place(top)
	}
}

// pop removes and returns the next live event in (at, seq) order, or nil
// if none is pending.
func (s *Scheduler) pop() *event {
	for {
		// Fold any bucket events for the cursor's own slot (including
		// ones scheduled since the last migration) into the slot heap.
		s.migrateCur()
		for len(s.cur) > 0 {
			ev := s.cur.pop()
			if ev.dead {
				s.recycle(ev)
				continue
			}
			return ev
		}
		if s.wheelCount > 0 {
			cur := int(s.curSlot & wheelMask)
			idx := s.nextOccupied((cur + 1) & wheelMask)
			d := int64((idx - cur) & wheelMask)
			s.advanceTo(s.curSlot + d)
			continue
		}
		// Wheel drained: jump the cursor to the earliest overflow event.
		for len(s.overflow) > 0 && s.overflow[0].dead {
			s.recycle(s.overflow.pop())
		}
		if len(s.overflow) == 0 {
			// Nothing pending anywhere. Re-anchor the cursor to the
			// clock so future scheduling at the present lands ahead of
			// it (the cursor may have out-run now while draining
			// cancelled events).
			s.curSlot = int64(s.now) >> slotShift
			return nil
		}
		s.advanceTo(int64(s.overflow[0].at) >> slotShift)
	}
}

// bucketMin returns the earliest live event time in bucket i.
func (s *Scheduler) bucketMin(i int) (Time, bool) {
	var best Time
	found := false
	for _, ev := range s.buckets[i] {
		if ev.dead {
			continue
		}
		if !found || ev.at < best {
			best = ev.at
			found = true
		}
	}
	return best, found
}

// peek returns the execution time of the next live event without
// disturbing the cursor. It may recycle cancelled events it encounters at
// heap tops, which never changes ordering.
func (s *Scheduler) peek() (Time, bool) {
	for len(s.cur) > 0 && s.cur[0].dead {
		s.recycle(s.cur.pop())
	}
	var best Time
	ok := false
	if len(s.cur) > 0 {
		best, ok = s.cur[0].at, true
	}
	// The cursor slot's bucket may hold events scheduled after the slot
	// began draining; they can precede the slot heap's top.
	cur := int(s.curSlot & wheelMask)
	if s.occupied[cur>>6]&(1<<uint(cur&63)) != 0 {
		if t, live := s.bucketMin(cur); live && (!ok || t < best) {
			best, ok = t, true
		}
	}
	if ok {
		return best, true
	}
	if s.wheelCount > 0 {
		// Walk occupied buckets in circular (= absolute time) order.
		// Buckets hold a single 2^slotShift time range each, so the
		// first bucket with a live event contains the minimum.
		prevD := 0
		p := (cur + 1) & wheelMask
		for {
			idx := s.nextOccupied(p)
			d := (idx - cur) & wheelMask
			if d <= prevD {
				break // wrapped past the cursor: only dead events left
			}
			if t, live := s.bucketMin(idx); live {
				return t, true
			}
			prevD = d
			p = (idx + 1) & wheelMask
		}
	}
	for len(s.overflow) > 0 && s.overflow[0].dead {
		s.recycle(s.overflow.pop())
	}
	if len(s.overflow) > 0 {
		return s.overflow[0].at, true
	}
	return 0, false
}

// NextAt returns the execution time of the earliest pending event, if
// any, without executing it. Real-time drivers (internal/wire) use it to
// sleep exactly until the next timer is due instead of polling.
func (s *Scheduler) NextAt() (Time, bool) { return s.peek() }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past is clamped to the present. It returns a cancellable Timer.
func (s *Scheduler) At(at Time, fn func()) Timer {
	if fn == nil {
		panic("sim: nil event function")
	}
	if at < s.now {
		at = s.now
	}
	ev := s.alloc(at)
	ev.fn = fn
	return Timer{ev: ev, s: s, gen: ev.gen}
}

// After schedules fn to run delay from now. Negative delays are clamped.
func (s *Scheduler) After(delay Time, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// AtCall schedules fn(arg) at absolute virtual time at. Unlike At it
// needs no closure: with a static fn and a pointer-shaped arg, scheduling
// is allocation-free (events themselves are recycled), which matters on
// the per-message hot paths.
func (s *Scheduler) AtCall(at Time, fn func(any), arg any) Timer {
	if fn == nil {
		panic("sim: nil event function")
	}
	if at < s.now {
		at = s.now
	}
	ev := s.alloc(at)
	ev.fnc = fn
	ev.arg = arg
	return Timer{ev: ev, s: s, gen: ev.gen}
}

// AfterCall schedules fn(arg) delay from now. Negative delays are clamped.
func (s *Scheduler) AfterCall(delay Time, fn func(any), arg any) Timer {
	if delay < 0 {
		delay = 0
	}
	return s.AtCall(s.now+delay, fn, arg)
}

// Every schedules fn to run periodically with the given period, starting
// one period from now. Stop the returned Ticker to cancel. period must be
// positive.
func (s *Scheduler) Every(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.arm()
	return t
}

// EveryBackoff schedules fn like Every, but lets an idle ticker slow
// itself down: every fire where fn reports no activity doubles the next
// period, up to max, and an active fire snaps back to the base period.
// max <= period degenerates to a plain fixed-period ticker.
func (s *Scheduler) EveryBackoff(period, max Time, fn func() bool) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	if max < period {
		max = period
	}
	t := &Ticker{s: s, period: period, max: max, fnb: fn}
	t.arm()
	return t
}

// Ticker repeatedly schedules a callback until stopped.
type Ticker struct {
	s       *Scheduler
	period  Time
	cur     Time // next period for backoff tickers; 0 = base period
	max     Time
	fn      func()
	fnb     func() bool // backoff variant: reports activity
	timer   Timer
	stopped bool
}

func (t *Ticker) arm() {
	d := t.period
	if t.cur > 0 {
		d = t.cur
	}
	t.timer = t.s.After(d, func() {
		if t.stopped {
			return
		}
		if t.fnb != nil {
			if t.fnb() {
				t.cur = t.period
			} else if next := d * 2; next < t.max {
				t.cur = next
			} else {
				t.cur = t.max
			}
		} else {
			t.fn()
		}
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Step executes the single next pending event, if any, advancing the
// clock. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	ev := s.pop()
	if ev == nil {
		return false
	}
	s.now = ev.at
	ev.dead = true
	fn, fnc, arg := ev.fn, ev.fnc, ev.arg
	s.recycle(ev)
	s.live--
	s.Executed++
	if fn != nil {
		fn()
	} else {
		fnc(arg)
	}
	return true
}

// Run executes events until no events remain or the clock passes until.
// Events scheduled exactly at until are executed. It returns the number of
// events executed and an error only if the event budget was exhausted.
func (s *Scheduler) Run(until Time) (int, error) {
	if s.running {
		panic("sim: re-entrant Run")
	}
	s.running = true
	defer func() { s.running = false }()
	n := 0
	for {
		at, ok := s.peek()
		if !ok || at > until {
			break
		}
		s.Step()
		n++
		if s.MaxEvents != 0 && s.Executed > s.MaxEvents {
			return n, ErrEventBudget
		}
		if s.stopped {
			s.stopped = false
			break
		}
	}
	// Advance the clock to until so repeated Run calls observe
	// monotonic time even when the event queue drains early.
	if s.now < until {
		s.now = until
	}
	return n, nil
}

// RunAll executes events until the queue drains. Use MaxEvents to bound
// runaway simulations.
func (s *Scheduler) RunAll() (int, error) {
	n := 0
	for {
		if !s.Step() {
			return n, nil
		}
		n++
		if s.MaxEvents != 0 && s.Executed > s.MaxEvents {
			return n, ErrEventBudget
		}
		if s.stopped {
			s.stopped = false
			return n, nil
		}
	}
}

// Stop makes the innermost Run/RunAll return after the current event.
func (s *Scheduler) Stop() { s.stopped = true }
