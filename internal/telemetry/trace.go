package telemetry

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Clock is the single wall-time source shared by the event ring and the
// trace plane, so events and spans stamped in one process are mutually
// ordered. It is anchored once: the wall reading at construction plus
// the monotonic elapsed time since, which keeps span deltas immune to
// wall-clock steps mid-run. A nil *Clock falls back to time.Now, so
// unattached instrumentation keeps working.
type Clock struct {
	baseNS int64
	start  time.Time
	fake   func() int64 // tests: fully synthetic time
}

// NewClock returns a clock anchored to the current wall time.
func NewClock() *Clock {
	return &Clock{baseNS: time.Now().UnixNano(), start: time.Now()}
}

// NewClockAt returns a clock that reads fn — test injection only.
func NewClockAt(fn func() int64) *Clock {
	return &Clock{fake: fn}
}

// Now returns nanoseconds since the Unix epoch.
func (c *Clock) Now() int64 {
	if c == nil {
		return time.Now().UnixNano()
	}
	if c.fake != nil {
		return c.fake()
	}
	return c.baseNS + int64(time.Since(c.start))
}

// Stage identifies one lifecycle point on a message's path from source
// publish to ordered delivery, or an annotation event (retransmit, Nack
// repair, fsync) that explains a gap between lifecycle stages.
type Stage uint8

const (
	// Lifecycle stages, in causal order along the critical path. The
	// source-side chain is publish→enqueue→flush→tx; every member that
	// sees the message then runs rx→wq_accept→stamp→mq_ready→deliver.
	StagePublish  Stage = iota // application handed payload to Submit
	StageEnqueue               // queued into the shared outbox shard
	StageFlush                 // batch window closed, shard stolen
	StageTX                    // datagram handed to the UDP socket
	StageRX                    // datagram decoded off the socket
	StageWQAccept              // inserted into the source queue (WQ)
	StageStamp                 // token assigned the global sequence
	StageMQReady               // MQ front became contiguous through it
	StageDeliver               // handed to the delivery callback

	// Annotation stages: not part of the telescoping chain, but placed
	// on the same timeline to explain where lifecycle gaps came from.
	StageRetransmit // per-message retransmission fired
	StageNackTX     // repair Nack sent for an MQ gap
	StageNackServe  // stored body re-sent to answer a peer's Nack
	StageFsync      // durable-log fsync on the delivery path

	numStages
)

var stageNames = [numStages]string{
	"publish", "outbox_enqueue", "outbox_flush", "tx", "rx",
	"wq_accept", "stamp", "mq_ready", "deliver",
	"retransmit", "nack_tx", "nack_serve", "fsync",
}

// String returns the stable wire name of the stage.
func (s Stage) String() string {
	if s < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// Lifecycle reports whether the stage sits on the telescoping
// publish→deliver chain (annotations are excluded from stage-delta
// histograms).
func (s Stage) Lifecycle() bool { return s <= StageDeliver }

// ParseStage maps a wire name back to its Stage.
func ParseStage(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// LifecycleStages returns the ordered critical-path stages — the rows
// of every stage-breakdown table and the histogram label set.
func LifecycleStages() []Stage {
	out := make([]Stage, 0, int(StageDeliver)+1)
	for s := StagePublish; s <= StageDeliver; s++ {
		out = append(out, s)
	}
	return out
}

// Span is one traced lifecycle point of one message on one member. The
// trace key is the message's natural identity (Group, Source, Local) —
// nothing is added to the wire format; every process derives the same
// key from the fields the protocol already carries.
type Span struct {
	// Seq is the ring-assigned monotone sequence number on this member.
	Seq    uint64 `json:"seq"`
	WallNS int64  `json:"wall_ns"`
	Node   uint32 `json:"node"`
	Stage  string `json:"stage"`

	// Trace key: group, source node, source-local sequence.
	Group  uint32 `json:"group,omitempty"`
	Source uint32 `json:"source,omitempty"`
	Local  uint64 `json:"local,omitempty"`

	// Global is the assigned total-order sequence, once known.
	Global uint64 `json:"global,omitempty"`
	// Peer is the datagram counterparty for tx/rx/nack_serve stages.
	Peer uint32 `json:"peer,omitempty"`
	// DurNS carries a measured duration for annotation spans (fsync).
	DurNS int64 `json:"dur_ns,omitempty"`
	// Detail is optional human context (e.g. a Nack range).
	Detail string `json:"detail,omitempty"`
}

// SampledKey is the deterministic sampler every process shares: FNV-1a
// over the trace key's fixed-width encoding, kept when the hash is
// 0 mod mod. Because the hash input is the message's protocol identity,
// all members sample exactly the same messages with no coordination.
// mod<=0 disables sampling; mod==1 samples everything.
func SampledKey(mod int, group, source uint32, local uint64) bool {
	if mod <= 0 {
		return false
	}
	if mod == 1 {
		return true
	}
	var b [16]byte
	binary.LittleEndian.PutUint32(b[0:4], group)
	binary.LittleEndian.PutUint32(b[4:8], source)
	binary.LittleEndian.PutUint64(b[8:16], local)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h%uint64(mod) == 0
}

// traceKey identifies one message for stage-delta tracking.
type traceKey struct {
	group  uint32
	source uint32
	local  uint64
}

// maxDeltaKeys bounds the per-key last-stage map; keys are deleted on
// deliver, so the map only grows with concurrently in-flight sampled
// messages. Overflow skips delta observation, never span emission.
const maxDeltaKeys = 8192

// Tracer is the per-member trace plane: a deterministic sampler, a
// bounded span ring (newest overwrites oldest), and per-stage latency
// histograms fed by the delta between consecutive lifecycle spans of
// the same key on this member. All methods are nil-receiver-safe
// no-ops, so the simulator and the steady-state benchmark — which never
// construct one — pay a single branch per hook.
type Tracer struct {
	mod   int
	node  uint32
	clock *Clock

	mu   sync.Mutex
	buf  []Span
	next uint64
	last map[traceKey]int64 // key -> WallNS of its previous lifecycle span
	hist [numStages]*Histogram
}

// NewTracer builds a tracer for node with the given sampling modulus
// and span-ring capacity. mod<=0 returns an inert tracer (Active false)
// so gating stays uniform at call sites.
func NewTracer(node uint32, mod, capacity int, clock *Clock) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		mod:   mod,
		node:  node,
		clock: clock,
		buf:   make([]Span, capacity),
		last:  make(map[traceKey]int64),
	}
}

// SetStageHistogram attaches the registry histogram that receives the
// delta from the previous lifecycle stage whenever stage s is recorded.
func (t *Tracer) SetStageHistogram(s Stage, h *Histogram) {
	if t == nil || s >= numStages {
		return
	}
	t.hist[s] = h
}

// Active reports whether any key can sample — the cheap guard hot loops
// check before assembling span arguments.
func (t *Tracer) Active() bool { return t != nil && t.mod > 0 }

// Sampled reports whether this trace key is kept.
func (t *Tracer) Sampled(group, source uint32, local uint64) bool {
	if t == nil {
		return false
	}
	return SampledKey(t.mod, group, source, local)
}

// Span records one lifecycle point for a message, if its key is
// sampled: stamps node, ring sequence and clock time, appends to the
// span ring, and observes the delta from the key's previous lifecycle
// stage on this member into the stage's histogram.
func (t *Tracer) Span(stage Stage, group, source uint32, local, global uint64, peer uint32) {
	if t == nil || t.mod <= 0 || !SampledKey(t.mod, group, source, local) {
		return
	}
	now := t.clock.Now()
	sp := Span{
		WallNS: now,
		Node:   t.node,
		Stage:  stage.String(),
		Group:  group,
		Source: source,
		Local:  local,
		Global: global,
		Peer:   peer,
	}
	t.mu.Lock()
	sp.Seq = t.next
	t.buf[t.next%uint64(len(t.buf))] = sp
	t.next++
	if stage.Lifecycle() {
		k := traceKey{group, source, local}
		if prev, ok := t.last[k]; ok {
			t.hist[stage].Observe(float64(now-prev) / 1e9)
		}
		if stage == StageDeliver {
			delete(t.last, k)
		} else if len(t.last) < maxDeltaKeys {
			t.last[k] = now
		}
	}
	t.mu.Unlock()
}

// Annotate records a key-less annotation span (fsync, nack_tx): always
// kept when the tracer is active, since it describes the member, not
// one message. durNS and detail are optional.
func (t *Tracer) Annotate(stage Stage, group uint32, global uint64, durNS int64, detail string) {
	if t == nil || t.mod <= 0 {
		return
	}
	sp := Span{
		WallNS: t.clock.Now(),
		Node:   t.node,
		Stage:  stage.String(),
		Group:  group,
		Global: global,
		DurNS:  durNS,
		Detail: detail,
	}
	t.mu.Lock()
	sp.Seq = t.next
	t.buf[t.next%uint64(len(t.buf))] = sp
	t.next++
	t.mu.Unlock()
}

// Emitted returns the total number of spans ever recorded (0 on nil).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Overwritten returns how many spans fell out of the bounded ring.
func (t *Tracer) Overwritten() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	capy := uint64(len(t.buf))
	if t.next > capy {
		return t.next - capy
	}
	return 0
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	capy := uint64(len(t.buf))
	lo := uint64(0)
	if n > capy {
		lo = n - capy
	}
	out := make([]Span, 0, n-lo)
	for s := lo; s < n; s++ {
		out = append(out, t.buf[s%capy])
	}
	return out
}

// WriteNDJSON renders the retained spans as newline-delimited JSON,
// oldest first.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range t.Snapshot() {
		if err := enc.Encode(&sp); err != nil {
			return err
		}
	}
	return nil
}
