// Package telemetry is the live observability plane: a dependency-free,
// allocation-conscious metrics registry (atomic counters, gauges,
// fixed-bucket histograms) plus a bounded structured event ring
// (ring.go) and a Prometheus text-exposition writer/linter (expo.go).
//
// The package is built for two very different callers at once. Protocol
// goroutines (drivers, socket readers, fsync timers) update instruments
// on their hot paths, so every instrument is a pointer whose methods are
// nil-receiver-safe no-ops: code instrumented against a nil *Counter
// pays one predictable branch and nothing else, which is how the
// simulator path stays byte-identical and benchmark-neutral while the
// wire daemon gets live numbers. Scrapers (the admin endpoint, the
// harness, periodic reports) read concurrently through atomics and get
// a consistent-enough snapshot without ever blocking a writer.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count. The zero value is
// ready; a nil *Counter is a no-op (unattached instrumentation).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic level. The zero value is ready; a nil *Gauge is a
// no-op.
type Gauge struct {
	v atomic.Int64
}

// Set assigns the level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the level by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: cumulative-style buckets in
// the Prometheus sense, atomic per-bucket counts, and a float64 sum
// maintained by CAS. Observation cost is one linear bucket scan (the
// layouts below keep it under ~20 comparisons) plus two atomic ops.
// A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64   // math.Float64bits of the running sum
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. The bounds slice is retained.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0, in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LatencyBuckets spans 10µs..10s exponentially — the layout every
// latency histogram in the tree shares (seconds units).
func LatencyBuckets() []float64 {
	return []float64{
		10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
		1, 2.5, 5, 10,
	}
}

// SizeBuckets spans 64B..64KB — outbox flushes and datagram sizes.
func SizeBuckets() []float64 {
	return []float64{64, 256, 1024, 4096, 16384, 49152, 65536}
}

// metricType is the exposition TYPE of one family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labeled instrument of a family. Exactly one of the
// instrument fields is set.
type series struct {
	labels string // rendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	order  []string
	byKey  map[string]*series
	bounds []float64 // histogram families: shared bucket layout
}

// Registry holds named instruments and renders them in Prometheus text
// exposition format. Registration (the Counter/Gauge/... constructors)
// takes a mutex and may allocate; it happens at assembly time.
// Updating a returned instrument is lock-free. A nil *Registry returns
// nil instruments from every constructor, so a whole instrumentation
// tree built against a nil registry is a no-op.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels turns k,v pairs into a canonical `{k="v",...}` string.
// Pairs are sorted by key so the same label set always renders — and
// therefore dedupes — identically.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key,value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", p.k, p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// lookup returns (creating if needed) the series for name+labels,
// asserting the family's type stays consistent.
func (r *Registry) lookup(name, help string, typ metricType, labels []string) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*series)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s and %s", name, f.typ, typ))
	}
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: key}
		f.byKey[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the counter named name with the given k,v label
// pairs, creating it on first use. Idempotent: the same name+labels
// always returns the same instrument.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, typeCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge named name with the given k,v label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, typeGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (derived metrics: transport stats, queue depths). fn must be
// safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, typeGauge, labels)
	s.fn = fn
}

// Histogram returns the histogram named name over bounds with the given
// k,v label pairs. All series of one family must share a layout; the
// first registration wins.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, typeHistogram, labels)
	r.mu.Lock()
	f := r.fams[name]
	if f.bounds == nil {
		f.bounds = bounds
	}
	bounds = f.bounds
	r.mu.Unlock()
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	return s.h
}

// Value returns the current value of the series name+labels (counters
// and gauges; histogram families answer through <name>_count), or
// ok=false when the series does not exist.
func (r *Registry) Value(name string, labels ...string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	key := renderLabels(labels)
	r.mu.Lock()
	f := r.fams[name]
	var s *series
	if f != nil {
		s = f.byKey[key]
	}
	r.mu.Unlock()
	if s == nil {
		return 0, false
	}
	switch {
	case s.c != nil:
		return float64(s.c.Value()), true
	case s.fn != nil:
		return s.fn(), true
	case s.g != nil:
		return float64(s.g.Value()), true
	case s.h != nil:
		return float64(s.h.Count()), true
	}
	return 0, false
}

// WriteProm renders every registered family in Prometheus text
// exposition format (one # HELP and # TYPE header per family, series in
// registration order).
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the family structure under the lock; instrument reads are
	// atomic and happen outside it.
	r.mu.Lock()
	type famSnap struct {
		f    *family
		rows []*series
	}
	fams := make([]famSnap, 0, len(r.order))
	for _, name := range r.order {
		f := r.fams[name]
		fs := famSnap{f: f, rows: make([]*series, 0, len(f.order))}
		for _, key := range f.order {
			fs.rows = append(fs.rows, f.byKey[key])
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()

	for _, fs := range fams {
		f := fs.f
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range fs.rows {
			var err error
			switch {
			case s.c != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.fn != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
			case s.g != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case s.h != nil:
				err = writeHistogram(w, f.name, s.labels, s.h)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative _bucket rows
// with an le label, then _sum and _count.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if err := writeBucket(w, name, inner, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if err := writeBucket(w, name, inner, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

func writeBucket(w io.Writer, name, innerLabels, le string, cum uint64) error {
	sep := ""
	if innerLabels != "" {
		sep = ","
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, innerLabels, sep, le, cum)
	return err
}

// formatFloat renders a float the exposition parser round-trips.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
