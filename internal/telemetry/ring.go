package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured protocol transition: a token regeneration, an
// epoch commit, a lame-ring park, a DLQ tombstone. Events carry small
// fixed fields so emitting one is a struct copy, not a format call —
// rendering happens at scrape time.
type Event struct {
	// Seq is the ring-assigned monotone sequence number (gaps mean the
	// scraper missed overwritten events).
	Seq    uint64 `json:"seq"`
	WallNS int64  `json:"wall_ns"`
	Node   uint32 `json:"node"`
	Group  uint32 `json:"group,omitempty"`

	// Type names the transition (e.g. "token-regen", "epoch-commit",
	// "lame-enter"); Value carries its primary number (epoch, global
	// sequence, peer id — per type); Detail is optional human context.
	Type   string `json:"type"`
	Value  uint64 `json:"value,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Ring is a bounded in-memory event log: fixed capacity, newest
// overwrites oldest, every write assigns the next sequence number.
// Emit takes a short mutex-guarded struct copy and never allocates or
// blocks on I/O, so protocol goroutines can call it from slow paths
// without jitter; scrapers copy the live window out under the same
// mutex. A nil *Ring is a no-op.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever emitted
}

// NewRing returns a ring holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit appends one event, stamping Seq and (if unset) WallNS.
func (r *Ring) Emit(e Event) {
	if r == nil {
		return
	}
	if e.WallNS == 0 {
		e.WallNS = time.Now().UnixNano()
	}
	r.mu.Lock()
	e.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// Emitted returns the total number of events ever emitted (0 on nil).
func (r *Ring) Emitted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns the retained window, oldest first.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	capy := uint64(len(r.buf))
	lo := uint64(0)
	if n > capy {
		lo = n - capy
	}
	out := make([]Event, 0, n-lo)
	for s := lo; s < n; s++ {
		out = append(out, r.buf[s%capy])
	}
	return out
}

// WriteNDJSON renders the retained window as newline-delimited JSON,
// oldest first.
func (r *Ring) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Snapshot() {
		if err := enc.Encode(&e); err != nil {
			return err
		}
	}
	return nil
}
