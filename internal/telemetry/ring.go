package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured protocol transition: a token regeneration, an
// epoch commit, a lame-ring park, a DLQ tombstone. Events carry small
// fixed fields so emitting one is a struct copy, not a format call —
// rendering happens at scrape time.
type Event struct {
	// Seq is the ring-assigned monotone sequence number (gaps mean the
	// scraper missed overwritten events).
	Seq    uint64 `json:"seq"`
	WallNS int64  `json:"wall_ns"`
	Node   uint32 `json:"node"`
	Group  uint32 `json:"group,omitempty"`

	// Type names the transition (e.g. "token-regen", "epoch-commit",
	// "lame-enter"); Value carries its primary number (epoch, global
	// sequence, peer id — per type); Detail is optional human context.
	Type   string `json:"type"`
	Value  uint64 `json:"value,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Ring is a bounded in-memory event log: fixed capacity, newest
// overwrites oldest, every write assigns the next sequence number.
// Emit takes a short mutex-guarded struct copy and never allocates or
// blocks on I/O, so protocol goroutines can call it from slow paths
// without jitter; scrapers copy the live window out under the same
// mutex. A nil *Ring is a no-op.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64 // total events ever emitted
	clock *Clock // shared wall source; nil falls back to time.Now
}

// NewRing returns a ring holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// SetClock injects the wall-time source Emit stamps with. Sharing one
// Clock between the event ring and the trace plane makes events and
// spans from the same process mutually ordered; previously every Emit
// read time.Now independently.
func (r *Ring) SetClock(c *Clock) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
}

// Emit appends one event, stamping Seq and (if unset) WallNS.
func (r *Ring) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if e.WallNS == 0 {
		e.WallNS = r.clock.Now()
	}
	e.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// Emitted returns the total number of events ever emitted (0 on nil).
func (r *Ring) Emitted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Overwritten returns how many events fell out of the bounded window —
// emitted minus retained. A scraper seeing this grow between polls
// knows its /events view has gaps without diffing Seq by hand.
func (r *Ring) Overwritten() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	capy := uint64(len(r.buf))
	if r.next > capy {
		return r.next - capy
	}
	return 0
}

// Snapshot returns the retained window, oldest first.
func (r *Ring) Snapshot() []Event {
	return r.SnapshotSince(0)
}

// SnapshotSince returns retained events with Seq >= since, oldest
// first. Incremental pollers pass last-seen Seq + 1 and only pay for
// what is new.
func (r *Ring) SnapshotSince(since uint64) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	capy := uint64(len(r.buf))
	lo := uint64(0)
	if n > capy {
		lo = n - capy
	}
	if since > lo {
		lo = since
	}
	if lo >= n {
		return nil
	}
	out := make([]Event, 0, n-lo)
	for s := lo; s < n; s++ {
		out = append(out, r.buf[s%capy])
	}
	return out
}

// WriteNDJSON renders the retained window as newline-delimited JSON,
// oldest first.
func (r *Ring) WriteNDJSON(w io.Writer) error {
	return r.WriteNDJSONSince(w, 0)
}

// WriteNDJSONSince renders retained events with Seq >= since.
func (r *Ring) WriteNDJSONSince(w io.Writer, since uint64) error {
	enc := json.NewEncoder(w)
	for _, e := range r.SnapshotSince(since) {
		if err := enc.Encode(&e); err != nil {
			return err
		}
	}
	return nil
}
