package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the consumer side of the exposition format: a strict
// linter (the CI job and the harness scraper both refuse malformed
// output) and a small parser that turns a scrape into a
// series-name→value map for mid-run invariant assertions.

// LintExposition validates Prometheus text-format output: metric-name
// charset, HELP/TYPE headers preceding their samples, parseable sample
// values, and no duplicate series. Returns the first violation.
func LintExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	typed := make(map[string]string) // family -> TYPE
	seen := make(map[string]bool)    // full series key
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !validMetricName(fields[2]) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			return fmt.Errorf("line %d: unparseable value %q", lineNo, value)
		}
		fam := familyOf(name, typed)
		if _, ok := typed[fam]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		key := name + labels
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
	}
	return sc.Err()
}

// ParseExposition parses a scrape into a map keyed by the full series
// string (`name` or `name{k="v",...}` exactly as exposed) with the
// sample value. Comment lines are skipped; malformed lines error.
func ParseExposition(r io.Reader) (map[string]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	out := make(map[string]float64)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: unparseable value %q", lineNo, value)
		}
		out[name+labels] = v
	}
	return out, sc.Err()
}

// splitSample breaks `name{labels} value` (labels optional) into parts.
func splitSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i : j+1]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", "", "", fmt.Errorf("sample without value: %q", line)
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	// rest may still carry an optional timestamp; take the first token.
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", "", "", fmt.Errorf("sample without value: %q", line)
	}
	return name, labels, fields[0], nil
}

// familyOf maps a sample name to its TYPE-declaring family: histogram
// sample suffixes (_bucket/_sum/_count) fold into the base name.
func familyOf(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if typed[base] == "histogram" || typed[base] == "summary" {
				return base
			}
		}
	}
	return name
}

// validMetricName reports whether name matches the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
