package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Ring
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	r.Emit(Event{Type: "x"})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || r.Emitted() != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	var nilReg *Registry
	if nilReg.Counter("x", "h") != nil || nilReg.Gauge("x", "h") != nil ||
		nilReg.Histogram("x", "h", LatencyBuckets()) != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	if err := nilReg.WriteProm(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry WriteProm: %v", err)
	}
}

func TestRegistryIdempotentAndLabelOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ringnet_test_total", "help", "group", "1", "tier", "ranged")
	b := r.Counter("ringnet_test_total", "help", "tier", "ranged", "group", "1")
	if a != b {
		t.Fatalf("same name+labels must return the same instrument regardless of pair order")
	}
	a.Add(7)
	if v, ok := r.Value("ringnet_test_total", "tier", "ranged", "group", "1"); !ok || v != 7 {
		t.Fatalf("Value = %v, %v; want 7, true", v, ok)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %v, want 556.5", h.Sum())
	}
	want := []uint64{2, 1, 1, 1} // le=1 gets 0.5 and 1.0; +Inf gets 500
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ringnet_delivered_total", "Messages delivered.", "group", "7").Add(42)
	r.Gauge("ringnet_lame", "Parked in a lame ring.", "group", "7").Set(1)
	r.GaugeFunc("ringnet_derived", "Scrape-time value.", func() float64 { return 2.5 })
	h := r.Histogram("ringnet_lat_seconds", "Latency.", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	text := buf.String()
	if err := LintExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("own exposition fails lint: %v\n%s", err, text)
	}
	m, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	checks := map[string]float64{
		`ringnet_delivered_total{group="7"}`:     42,
		`ringnet_lame{group="7"}`:                1,
		`ringnet_derived`:                        2.5,
		`ringnet_lat_seconds_bucket{le="0.001"}`: 1,
		`ringnet_lat_seconds_bucket{le="0.1"}`:   1,
		`ringnet_lat_seconds_bucket{le="+Inf"}`:  2,
		`ringnet_lat_seconds_count`:              2,
		`ringnet_lat_seconds_sum`:                5.0005,
	}
	for k, want := range checks {
		if got, ok := m[k]; !ok || got != want {
			t.Fatalf("series %s = %v, %v; want %v\n%s", k, got, ok, want, text)
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	bad := []string{
		"ringnet_x 1", // sample without TYPE
		"# TYPE ringnet_x counter\nringnet_x notnum",         // bad value
		"# TYPE ringnet_x counter\nringnet_x 1\nringnet_x 2", // duplicate
		"# TYPE 9bad counter\n9bad 1",                        // bad name
		"# TYPE ringnet_x wat\nringnet_x 1",                  // bad type
		"# TYPE ringnet_x counter\nringnet_x{le=\"oops\" 1",  // unbalanced braces
	}
	for _, text := range bad {
		if err := LintExposition(strings.NewReader(text)); err == nil {
			t.Fatalf("lint accepted malformed exposition:\n%s", text)
		}
	}
}

func TestRingBoundedAndOrdered(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Type: "t", Value: uint64(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, e := range snap {
		if e.Value != uint64(6+i) || e.Seq != uint64(6+i) {
			t.Fatalf("snapshot[%d] = %+v, want value/seq %d", i, e, 6+i)
		}
	}
	if r.Emitted() != 10 {
		t.Fatalf("emitted = %d, want 10", r.Emitted())
	}
	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 4 {
		t.Fatalf("NDJSON lines = %d, want 4", n)
	}
}

// TestConcurrentWritersAndScraper is the -race workhorse: protocol-side
// writers hammer counters, a histogram, and the event ring while a
// scraper loop renders, lints, and parses the registry and snapshots
// the ring. No torn values, no lint failures, and counts line up at
// the end.
func TestConcurrentWritersAndScraper(t *testing.T) {
	r := NewRegistry()
	ring := NewRing(64)
	c := r.Counter("ringnet_w_total", "writes")
	g := r.Gauge("ringnet_w_gauge", "level")
	h := r.Histogram("ringnet_w_seconds", "lat", LatencyBuckets())

	const writers = 8
	const perWriter = 2000
	var writersWG, scraperWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(i%100) * 1e-4)
				if i%50 == 0 {
					ring.Emit(Event{Type: "tick", Node: uint32(w), Value: uint64(i)})
				}
			}
		}(w)
	}
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WriteProm(&buf); err != nil {
				t.Errorf("WriteProm: %v", err)
				return
			}
			if err := LintExposition(bytes.NewReader(buf.Bytes())); err != nil {
				t.Errorf("mid-run lint: %v", err)
				return
			}
			if _, err := ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
				t.Errorf("mid-run parse: %v", err)
				return
			}
			snap := ring.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq != snap[i-1].Seq+1 {
					t.Errorf("ring snapshot not contiguous: %d then %d", snap[i-1].Seq, snap[i].Seq)
					return
				}
			}
		}
	}()
	writersWG.Wait()
	close(stop)
	scraperWG.Wait()

	if c.Value() != writers*perWriter {
		t.Fatalf("counter = %d, want %d", c.Value(), writers*perWriter)
	}
	if h.Count() != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*perWriter)
	}
	if ring.Emitted() != writers*perWriter/50 {
		t.Fatalf("ring emitted = %d, want %d", ring.Emitted(), writers*perWriter/50)
	}
}
