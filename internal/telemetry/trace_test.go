package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSampledKeyDeterministic pins the sampler's contract: every
// process keeps exactly the same trace keys, because the decision is a
// pure function of the message's protocol identity. The fixed-point
// pins catch any change to the hash — which would silently desynchronize
// dumps written by members built from different commits.
func TestSampledKeyDeterministic(t *testing.T) {
	// Fixed-point pins (FNV-1a over the 16-byte LE key encoding).
	wantMod8 := []uint64{6, 14, 22, 30, 38}
	var got []uint64
	for l := uint64(1); l <= 40; l++ {
		if SampledKey(8, 1, 2, l) {
			got = append(got, l)
		}
	}
	if len(got) != len(wantMod8) {
		t.Fatalf("mod 8 keys (group 1, source 2): got %v want %v", got, wantMod8)
	}
	for i := range got {
		if got[i] != wantMod8[i] {
			t.Fatalf("mod 8 keys: got %v want %v", got, wantMod8)
		}
	}

	// Two tracers with different node identities — the cross-process
	// shape — agree on every key.
	a := NewTracer(1, 4, 64, nil)
	b := NewTracer(9, 4, 64, nil)
	for src := uint32(1); src <= 6; src++ {
		for l := uint64(1); l <= 200; l++ {
			if a.Sampled(1, src, l) != b.Sampled(1, src, l) {
				t.Fatalf("tracers disagree on key (1,%d,%d)", src, l)
			}
		}
	}

	// The sampler is unbiased: mod 8 keeps exactly 1/8 of a long
	// single-source stream.
	n := 0
	for l := uint64(1); l <= 100000; l++ {
		if SampledKey(8, 1, 1, l) {
			n++
		}
	}
	if n != 12500 {
		t.Fatalf("mod 8 kept %d of 100000, want 12500", n)
	}

	// Edge moduli: 0 disables, 1 keeps everything.
	if SampledKey(0, 1, 1, 1) {
		t.Fatal("mod 0 must sample nothing")
	}
	for l := uint64(1); l <= 50; l++ {
		if !SampledKey(1, 1, 1, l) {
			t.Fatalf("mod 1 must sample everything (missed local %d)", l)
		}
	}
}

// TestTracerSpanRing exercises the bounded span ring: sampling gate,
// ring-assigned sequence numbers, oldest-first snapshots, overwrite
// accounting, and the per-stage delta histograms.
func TestTracerSpanRing(t *testing.T) {
	now := int64(1000)
	clk := NewClockAt(func() int64 { return now })
	tr := NewTracer(3, 1, 4, clk) // capacity 4, sample everything
	stamp := NewHistogram(LatencyBuckets())
	deliver := NewHistogram(LatencyBuckets())
	tr.SetStageHistogram(StageStamp, stamp)
	tr.SetStageHistogram(StageDeliver, deliver)

	tr.Span(StagePublish, 1, 3, 7, 0, 0)
	now += 2_000_000 // 2ms
	tr.Span(StageStamp, 1, 3, 7, 42, 0)
	now += 3_000_000 // 3ms
	tr.Span(StageDeliver, 1, 3, 7, 42, 0)

	if got := tr.Emitted(); got != 3 {
		t.Fatalf("Emitted = %d, want 3", got)
	}
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(spans))
	}
	for i, want := range []string{"publish", "stamp", "deliver"} {
		if spans[i].Stage != want || spans[i].Seq != uint64(i) || spans[i].Node != 3 {
			t.Fatalf("span %d = %+v, want stage %q seq %d node 3", i, spans[i], want, i)
		}
	}
	if spans[1].Global != 42 || spans[1].Local != 7 || spans[1].Source != 3 {
		t.Fatalf("stamp span key wrong: %+v", spans[1])
	}
	// Stage deltas: publish→stamp 2ms, stamp→deliver 3ms.
	if stamp.Count() != 1 || stamp.Sum() < 0.0019 || stamp.Sum() > 0.0021 {
		t.Fatalf("stamp histogram: count %d sum %g, want 1 obs ≈ 2ms", stamp.Count(), stamp.Sum())
	}
	if deliver.Count() != 1 || deliver.Sum() < 0.0029 || deliver.Sum() > 0.0031 {
		t.Fatalf("deliver histogram: count %d sum %g, want 1 obs ≈ 3ms", deliver.Count(), deliver.Sum())
	}

	// Overflow: two more spans push the first two off the capacity-4 ring.
	tr.Annotate(StageFsync, 1, 0, 500, "")
	tr.Annotate(StageNackTX, 1, 9, 0, "range 9-9")
	if got := tr.Overwritten(); got != 1 {
		t.Fatalf("Overwritten = %d, want 1", got)
	}
	spans = tr.Snapshot()
	if len(spans) != 4 || spans[0].Stage != "stamp" || spans[3].Stage != "nack_tx" {
		t.Fatalf("post-overflow snapshot wrong: %+v", spans)
	}

	// The unsampled path emits nothing.
	off := NewTracer(3, 0, 4, clk)
	off.Span(StagePublish, 1, 3, 7, 0, 0)
	off.Annotate(StageFsync, 1, 0, 0, "")
	if off.Active() || off.Emitted() != 0 {
		t.Fatalf("mod-0 tracer emitted %d spans", off.Emitted())
	}

	// Nil-safety: every method on a nil tracer is a no-op.
	var nilTr *Tracer
	nilTr.Span(StageDeliver, 1, 1, 1, 1, 0)
	nilTr.Annotate(StageFsync, 1, 0, 0, "")
	if nilTr.Active() || nilTr.Sampled(1, 1, 1) || nilTr.Emitted() != 0 || nilTr.Snapshot() != nil {
		t.Fatal("nil tracer is not inert")
	}
}

// TestSharedClockOrdersEventsAndSpans pins satellite semantics: the
// event ring and the tracer stamp from one injected clock, so their
// timestamps interleave consistently within a process.
func TestSharedClockOrdersEventsAndSpans(t *testing.T) {
	now := int64(5000)
	clk := NewClockAt(func() int64 { return now })
	ring := NewRing(16)
	ring.SetClock(clk)
	tr := NewTracer(1, 1, 16, clk)

	ring.Emit(Event{Type: "epoch-commit"})
	now++
	tr.Span(StagePublish, 1, 1, 1, 0, 0)
	now++
	ring.Emit(Event{Type: "token-regen"})

	evs := ring.Snapshot()
	sps := tr.Snapshot()
	if evs[0].WallNS != 5000 || sps[0].WallNS != 5001 || evs[1].WallNS != 5002 {
		t.Fatalf("shared clock not respected: events %v %v, span %v",
			evs[0].WallNS, evs[1].WallNS, sps[0].WallNS)
	}
	// A caller-stamped WallNS survives.
	ring.Emit(Event{Type: "custom", WallNS: 42})
	if evs := ring.Snapshot(); evs[2].WallNS != 42 {
		t.Fatalf("explicit WallNS overwritten: %v", evs[2].WallNS)
	}
}

// TestRingSinceAndOverwritten covers the incremental-polling surface:
// SnapshotSince/WriteNDJSONSince return only Seq >= since, and
// Overwritten counts what fell off the window.
func TestRingSinceAndOverwritten(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Type: "e", Value: uint64(i)})
	}
	if got := r.Emitted(); got != 10 {
		t.Fatalf("Emitted = %d, want 10", got)
	}
	if got := r.Overwritten(); got != 6 {
		t.Fatalf("Overwritten = %d, want 6", got)
	}
	// Window holds Seq 6..9; since=8 returns the last two.
	evs := r.SnapshotSince(8)
	if len(evs) != 2 || evs[0].Seq != 8 || evs[1].Seq != 9 {
		t.Fatalf("SnapshotSince(8) = %+v", evs)
	}
	// since below the window clamps to the window start.
	evs = r.SnapshotSince(2)
	if len(evs) != 4 || evs[0].Seq != 6 {
		t.Fatalf("SnapshotSince(2) = %+v", evs)
	}
	// since past the end is empty.
	if evs := r.SnapshotSince(10); len(evs) != 0 {
		t.Fatalf("SnapshotSince(10) = %+v", evs)
	}
	var buf bytes.Buffer
	if err := r.WriteNDJSONSince(&buf, 9); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], `"seq":9`) {
		t.Fatalf("WriteNDJSONSince(9) = %q", buf.String())
	}
}

// FuzzSpanNDJSON mirrors FuzzFrameDecode's contract for the span wire
// format: arbitrary input never panics the decoder, and any input that
// parses re-encodes to a fixed point after one normalization pass —
// the property the stitcher relies on to round-trip dumps.
func FuzzSpanNDJSON(f *testing.F) {
	seed := []Span{
		{Seq: 0, WallNS: 1700000000000000000, Node: 1, Stage: "publish", Group: 1, Source: 1, Local: 6},
		{Seq: 7, WallNS: 1700000000002000000, Node: 3, Stage: "stamp", Group: 1, Source: 2, Local: 14, Global: 99},
		{Seq: 8, WallNS: 1700000000002500000, Node: 3, Stage: "rx", Group: 1, Source: 2, Local: 14, Peer: 2},
		{Seq: 9, WallNS: 1700000000003000000, Node: 3, Stage: "fsync", Group: 1, DurNS: 150000, Detail: "flush-window"},
	}
	for _, sp := range seed {
		b, err := json.Marshal(&sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"stage":"deliver"`))
	f.Fuzz(func(t *testing.T, line []byte) {
		var sp Span
		if err := json.Unmarshal(line, &sp); err != nil {
			return // malformed input is rejected, not panicked on
		}
		// One normalization pass: re-encode the parsed span.
		enc1, err := json.Marshal(&sp)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var sp2 Span
		if err := json.Unmarshal(enc1, &sp2); err != nil {
			t.Fatalf("re-decode of own encoding %q: %v", enc1, err)
		}
		enc2, err := json.Marshal(&sp2)
		if err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("not a fixed point: %q vs %q", enc1, enc2)
		}
		if sp2 != sp {
			t.Fatalf("value drift through encode/decode: %+v vs %+v", sp, sp2)
		}
	})
}

// TestStageNames pins the stage name table and its inverse.
func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		StagePublish: "publish", StageEnqueue: "outbox_enqueue",
		StageFlush: "outbox_flush", StageTX: "tx", StageRX: "rx",
		StageWQAccept: "wq_accept", StageStamp: "stamp",
		StageMQReady: "mq_ready", StageDeliver: "deliver",
		StageRetransmit: "retransmit", StageNackTX: "nack_tx",
		StageNackServe: "nack_serve", StageFsync: "fsync",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("Stage(%d).String() = %q, want %q", s, s.String(), name)
		}
		back, ok := ParseStage(name)
		if !ok || back != s {
			t.Fatalf("ParseStage(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := ParseStage("bogus"); ok {
		t.Fatal("ParseStage accepted a bogus name")
	}
	for i, s := range LifecycleStages() {
		if Stage(i) != s || !s.Lifecycle() {
			t.Fatalf("LifecycleStages()[%d] = %v", i, s)
		}
	}
	if StageRetransmit.Lifecycle() || StageFsync.Lifecycle() {
		t.Fatal("annotation stages must not be lifecycle")
	}
}
