package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/seq"
)

// mkRecord builds a deterministic record for global g.
func mkRecord(g uint64) Record {
	return Record{
		Global:  seq.GlobalSeq(g),
		Source:  seq.NodeID(g%4 + 1),
		Local:   seq.LocalSeq(g/4 + 1),
		Payload: []byte(fmt.Sprintf("payload-%06d", g)),
	}
}

// fill appends globals [1..n] and syncs.
func fill(t *testing.T, l DeliveryLog, n int) {
	t.Helper()
	for g := 1; g <= n; g++ {
		if err := l.Append(mkRecord(uint64(g))); err != nil {
			t.Fatalf("append %d: %v", g, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

// collect replays the log into a slice.
func collect(t *testing.T, l DeliveryLog) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(r Record) error {
		cp := r
		cp.Payload = append([]byte(nil), r.Payload...)
		out = append(out, cp)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// assertPrefix checks that recs is exactly records 1..k for some k and
// returns k — the consistent-prefix recovery invariant.
func assertPrefix(t *testing.T, recs []Record) int {
	t.Helper()
	for i, r := range recs {
		want := mkRecord(uint64(i + 1))
		if r.Global != want.Global || r.Source != want.Source ||
			r.Local != want.Local || !bytes.Equal(r.Payload, want.Payload) {
			t.Fatalf("record %d: got {%d %d %d %q}, want {%d %d %d %q}",
				i, r.Global, r.Source, r.Local, r.Payload,
				want.Global, want.Source, want.Local, want.Payload)
		}
	}
	return len(recs)
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d segs)", err, len(segs))
	}
	return filepath.Join(dir, segs[len(segs)-1].name)
}

func firstSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d segs)", err, len(segs))
	}
	return filepath.Join(dir, segs[0].name)
}

// flipByteAt XORs one byte of the file at offset from the end.
func flipByteAt(t *testing.T, path string, fromEnd int64) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(b)) <= fromEnd {
		t.Fatalf("file %s too short (%d) to flip at -%d", path, len(b), fromEnd)
	}
	b[int64(len(b))-1-fromEnd] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func truncateBy(t *testing.T, path string, n int64) {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// TestFileLogMatchesMemLog drives FileLog and the in-memory reference
// through the same appends (including duplicates and a gap) and
// checks identical replay, fronts, and duplicate counts.
func TestFileLogMatchesMemLog(t *testing.T) {
	dir := t.TempDir()
	fl, err := OpenFileLog(dir, FileLogOptions{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ml := NewMemLog()
	feed := func(g uint64) {
		r := mkRecord(g)
		if err := fl.Append(r); err != nil {
			t.Fatalf("filelog append %d: %v", g, err)
		}
		if err := ml.Append(r); err != nil {
			t.Fatalf("memlog append %d: %v", g, err)
		}
	}
	for g := uint64(1); g <= 100; g++ {
		feed(g)
	}
	feed(50)  // duplicate: dropped by both
	feed(100) // duplicate at front
	feed(200) // gap: fresh-rejoin discard semantics
	if err := fl.Sync(); err != nil {
		t.Fatal(err)
	}
	if fl.Front() != ml.Front() || fl.Front() != 200 {
		t.Fatalf("front mismatch: file=%d mem=%d", fl.Front(), ml.Front())
	}
	if fl.Duplicates() != ml.Duplicates() || fl.Duplicates() != 2 {
		t.Fatalf("dups mismatch: file=%d mem=%d", fl.Duplicates(), ml.Duplicates())
	}
	fr, mr := collect(t, fl), collect(t, ml)
	if len(fr) != len(mr) || len(fr) != 101 {
		t.Fatalf("replay length: file=%d mem=%d", len(fr), len(mr))
	}
	for i := range fr {
		if fr[i].Global != mr[i].Global || !bytes.Equal(fr[i].Payload, mr[i].Payload) {
			t.Fatalf("replay diverges at %d: file=%d mem=%d", i, fr[i].Global, mr[i].Global)
		}
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the recovered front is the durable resume position.
	fl2, err := OpenFileLog(dir, FileLogOptions{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	if fl2.RecoveredFront() != 200 {
		t.Fatalf("recovered front = %d, want 200", fl2.RecoveredFront())
	}
	if got := len(collect(t, fl2)); got != 101 {
		t.Fatalf("reopened replay length = %d, want 101", got)
	}
}

// TestFileLogFaultInjection is the crash/corruption table: every fault
// must recover to a consistent prefix 1..k (never a hole, never a
// mangled record), with k bounded as each case expects.
func TestFileLogFaultInjection(t *testing.T) {
	const n = 200
	// Small segments so corruption in an early segment exercises the
	// drop-later-segments rule.
	opt := FileLogOptions{SegmentBytes: 2048}
	cases := []struct {
		name string
		// damage mutates the on-disk state after a clean close.
		damage func(t *testing.T, dir string)
		// wantMin/wantMax bound the recovered prefix length.
		wantMin, wantMax int
	}{
		{
			name:    "clean",
			damage:  func(t *testing.T, dir string) {},
			wantMin: n, wantMax: n,
		},
		{
			name: "corrupt-crc-tail",
			damage: func(t *testing.T, dir string) {
				// Flip a payload byte of the final record: its CRC
				// fails, only it is dropped.
				flipByteAt(t, lastSegment(t, dir), 2)
			},
			wantMin: n - 1, wantMax: n - 1,
		},
		{
			name: "mid-record-truncation",
			damage: func(t *testing.T, dir string) {
				truncateBy(t, lastSegment(t, dir), 7)
			},
			wantMin: n - 1, wantMax: n - 1,
		},
		{
			name: "corrupt-early-segment",
			damage: func(t *testing.T, dir string) {
				// Damage the first segment's tail: recovery truncates
				// there and must discard every later segment.
				flipByteAt(t, firstSegment(t, dir), 2)
			},
			wantMin: 1, wantMax: n / 2,
		},
		{
			name: "last-segment-header-torn",
			damage: func(t *testing.T, dir string) {
				if err := os.Truncate(lastSegment(t, dir), 3); err != nil {
					t.Fatal(err)
				}
			},
			wantMin: 1, wantMax: n - 1,
		},
		{
			name: "last-segment-removed",
			damage: func(t *testing.T, dir string) {
				if err := os.Remove(lastSegment(t, dir)); err != nil {
					t.Fatal(err)
				}
			},
			wantMin: 1, wantMax: n - 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := OpenFileLog(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			fill(t, l, n)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			tc.damage(t, dir)
			r, err := OpenFileLog(dir, opt)
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.name, err)
			}
			defer r.Close()
			k := assertPrefix(t, collect(t, r))
			if k < tc.wantMin || k > tc.wantMax {
				t.Fatalf("recovered prefix %d, want in [%d,%d]", k, tc.wantMin, tc.wantMax)
			}
			if r.RecoveredFront() != seq.GlobalSeq(k) {
				t.Fatalf("recovered front %d != prefix %d", r.RecoveredFront(), k)
			}
			// The log must accept appends continuing the prefix.
			if err := r.Append(mkRecord(uint64(k + 1))); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := r.Sync(); err != nil {
				t.Fatal(err)
			}
			if got := len(collect(t, r)); got != k+1 {
				t.Fatalf("post-recovery append not visible: %d records, want %d", got, k+1)
			}
		})
	}
}

// TestFileLogCrashWindow emulates a crash between flush intervals: the
// writer is abandoned without Sync/Close, so appends past the last
// sync live only in the process buffer and must be gone on reopen —
// while everything before the sync survives.
func TestFileLogCrashWindow(t *testing.T) {
	for _, unsynced := range []int{1, 10, 50} {
		t.Run(fmt.Sprintf("unsynced-%d", unsynced), func(t *testing.T) {
			dir := t.TempDir()
			l, err := OpenFileLog(dir, FileLogOptions{SegmentBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			fill(t, l, 100) // durable
			for g := 101; g <= 100+unsynced; g++ {
				if err := l.Append(mkRecord(uint64(g))); err != nil {
					t.Fatal(err)
				}
			}
			// Crash: no Sync, no Close. The *os.File is leaked on
			// purpose — the OS closes it; what matters is the bufio
			// buffer is never flushed.
			l = nil
			r, err := OpenFileLog(dir, FileLogOptions{SegmentBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			k := assertPrefix(t, collect(t, r))
			if k < 100 || k > 100+unsynced {
				t.Fatalf("recovered prefix %d, want in [100,%d]", k, 100+unsynced)
			}
		})
	}
}

// TestFileLogDuplicateAppendOnReopen re-appends an overlapping window
// after recovery (exactly what a resumed member's catch-up repair
// does) and checks the log dedups rather than double-writing.
func TestFileLogDuplicateAppendOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenFileLog(dir, FileLogOptions{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 60)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFileLog(dir, FileLogOptions{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Redeliver 40..80: 40..60 are duplicates, 61..80 extend.
	for g := 40; g <= 80; g++ {
		if err := r.Append(mkRecord(uint64(g))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	if r.Duplicates() != 21 {
		t.Fatalf("duplicates = %d, want 21", r.Duplicates())
	}
	if k := assertPrefix(t, collect(t, r)); k != 80 {
		t.Fatalf("prefix %d, want 80", k)
	}
}

// TestFileLogSegmentRolling forces many tiny segments and checks the
// stream reads back whole across them.
func TestFileLogSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenFileLog(dir, FileLogOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 300)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 10 {
		t.Fatalf("expected many segments at 256B roll, got %d", len(segs))
	}
	r, err := OpenFileLog(dir, FileLogOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if k := assertPrefix(t, collect(t, r)); k != 300 {
		t.Fatalf("prefix %d, want 300", k)
	}
}

// TestDLQRoundTrip drives the list → replay → purge lifecycle the
// ringnet-dlq CLI exposes.
func TestDLQRoundTrip(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	ents := []DLQEntry{
		{Global: 41, Source: 2, Local: 7, Reason: "give-up", WallNS: 1111},
		{Global: 42, Source: 2, Local: 8, Reason: "give-up", WallNS: 2222},
		{Global: 55, Source: 3, Local: 1, Reason: "front-gap", WallNS: 3333},
	}
	for _, e := range ents {
		if err := q.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: entries survived.
	q, err = OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 3 || q.Cursor() != 0 {
		t.Fatalf("len=%d cursor=%d, want 3/0", q.Len(), q.Cursor())
	}
	got, err := q.Entries()
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range got {
		if e != ents[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, e, ents[i])
		}
	}
	// Replay emits all three and advances the cursor durably.
	var replayed []DLQEntry
	n, err := q.Replay(func(e DLQEntry) error { replayed = append(replayed, e); return nil })
	if err != nil || n != 3 || len(replayed) != 3 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	// Idempotent: nothing left past the cursor, even across reopen.
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q, err = OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := q.Replay(func(DLQEntry) error { return nil }); err != nil || n != 0 {
		t.Fatalf("second replay: n=%d err=%v", n, err)
	}
	// New condemnations land past the cursor.
	if err := q.Add(DLQEntry{Global: 90, Source: 1, Local: 2, Reason: "give-up"}); err != nil {
		t.Fatal(err)
	}
	if n, _ := q.Replay(func(DLQEntry) error { return nil }); n != 1 {
		t.Fatalf("replay after add: n=%d, want 1", n)
	}
	// Purge empties everything and the queue stays usable.
	if err := q.Purge(); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 {
		t.Fatalf("len after purge = %d", q.Len())
	}
	if ents, _ := q.Entries(); len(ents) != 0 {
		t.Fatalf("entries after purge = %d", len(ents))
	}
	if err := q.Add(DLQEntry{Global: 100, Source: 1, Local: 9, Reason: "skip"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q, err = OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.Len() != 1 || q.Cursor() != 0 {
		t.Fatalf("post-purge reopen: len=%d cursor=%d, want 1/0", q.Len(), q.Cursor())
	}
}

// TestDLQTornTail corrupts the queue file tail and checks recovery
// keeps the prefix.
func TestDLQTornTail(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := q.Add(DLQEntry{Global: seq.GlobalSeq(i), Source: 1, Local: seq.LocalSeq(i), Reason: "give-up"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	truncateBy(t, filepath.Join(dir, dlqFile), 3)
	q, err = OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.Len() != 4 {
		t.Fatalf("len after torn tail = %d, want 4", q.Len())
	}
	ents, err := q.Entries()
	if err != nil || len(ents) != 4 {
		t.Fatalf("entries = %d err=%v", len(ents), err)
	}
	for i, e := range ents {
		if e.Global != seq.GlobalSeq(i+1) {
			t.Fatalf("entry %d global = %d", i, e.Global)
		}
	}
}

// BenchmarkFileLogAppend sweeps the flush window: sync every k appends
// emulates the wire group's flush_ms interval at a given delivery
// rate. The ns/op spread between k=1 and k=∞ is the durability cost
// PERFORMANCE.md reports.
func BenchmarkFileLogAppend(b *testing.B) {
	payload := make([]byte, 64)
	for _, every := range []int{1, 8, 64, 512, 0} { // 0 = sync once at end
		name := fmt.Sprintf("sync-every-%d", every)
		if every == 0 {
			name = "sync-at-close"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			l, err := OpenFileLog(dir, FileLogOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := Record{Global: seq.GlobalSeq(i + 1), Source: 1,
					Local: seq.LocalSeq(i + 1), Payload: payload}
				if err := l.Append(r); err != nil {
					b.Fatal(err)
				}
				if every > 0 && (i+1)%every == 0 {
					if err := l.Sync(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
