package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/seq"
	"repro/internal/telemetry"
)

// DLQ is the per-member dead-letter queue: slots the really-lost rule
// condemned (source evicted, give-up rounds exhausted — see
// internal/core/ordering.go) are recorded here instead of vanishing
// into a silent InsertLost. An entry is a tombstone — the body is gone
// by definition; what the queue preserves is the slot's identity in
// the total order plus why it was written off, so an operator can
// audit exactly which positions a member skipped and reconcile them
// out of band (cmd/ringnet-dlq).
//
// The queue is one CRC-framed append-only file (dlq.rlog) plus a
// replay cursor (dlq.cursor, written atomically via rename): Replay
// emits entries past the cursor and advances it, so re-running a
// replay is idempotent; Purge removes both.
type DLQ struct {
	mu     sync.Mutex
	dir    string
	f      *os.File
	w      *bufio.Writer
	count  int
	cursor int
	dirty  bool
	depth  *telemetry.Gauge // live tombstone count; nil-safe
}

// SetDepthGauge attaches a live gauge tracking the entry count; it is
// primed with the recovered count and follows every Add and Purge.
func (q *DLQ) SetDepthGauge(g *telemetry.Gauge) {
	q.mu.Lock()
	q.depth = g
	g.Set(int64(q.count))
	q.mu.Unlock()
}

// DLQEntry is one condemned slot.
type DLQEntry struct {
	Global seq.GlobalSeq
	Source seq.NodeID
	Local  seq.LocalSeq
	// Reason says which really-lost tier condemned the slot
	// ("give-up", "front-gap", "skip").
	Reason string
	// WallNS is the wall-clock time the verdict was reached.
	WallNS int64
}

const (
	dlqMagic   = 0x514C4451 // "QDLQ"
	dlqFile    = "dlq.rlog"
	dlqCursor  = "dlq.cursor"
	dlqBodyMin = 8 + 4 + 8 + 8 + 2
)

// OpenDLQ opens (creating if needed) the dead-letter queue in dir,
// recovering its consistent prefix with the same torn-tail truncation
// rule as the delivery log.
func OpenDLQ(dir string) (*DLQ, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	q := &DLQ{dir: dir}
	path := filepath.Join(dir, dlqFile)
	count, truncAt, err := scanDLQ(path)
	if err != nil {
		return nil, err
	}
	if truncAt >= 0 {
		if truncAt < segHdrLen {
			truncAt = 0 // header torn: rewrite it below
		}
		if err := os.Truncate(path, truncAt); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	q.count = count
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	q.f, q.w = f, bufio.NewWriterSize(f, 1<<14)
	if st.Size() < segHdrLen {
		var hdr [segHdrLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], dlqMagic)
		binary.LittleEndian.PutUint32(hdr[4:8], logVersion)
		if _, err := q.w.Write(hdr[:]); err != nil {
			f.Close()
			return nil, err
		}
		q.dirty = true
	}
	if cur, err := os.ReadFile(filepath.Join(dir, dlqCursor)); err == nil {
		if n, err := strconv.Atoi(strings.TrimSpace(string(cur))); err == nil && n >= 0 {
			q.cursor = n
		}
	}
	if q.cursor > q.count {
		q.cursor = q.count
	}
	return q, nil
}

// scanDLQ counts valid entries and returns the truncation offset for
// a torn tail (-1 when the file is sound or absent).
func scanDLQ(path string) (count int, truncAt int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, -1, nil
	}
	if err != nil {
		return 0, -1, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<14)
	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != dlqMagic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != logVersion {
		return 0, 0, nil
	}
	off := int64(segHdrLen)
	for {
		_, n, ok := readDLQEntry(r)
		if !ok {
			if n == 0 {
				return count, -1, nil
			}
			return count, off, nil
		}
		off += n
		count++
	}
}

func readDLQEntry(r *bufio.Reader) (e DLQEntry, n int64, ok bool) {
	var hdr [recHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return e, 0, false
		}
		return e, 1, false
	}
	bodyLen := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if bodyLen < dlqBodyMin || bodyLen > recBodyMax {
		return e, 1, false
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return e, 1, false
	}
	if crc32.Checksum(body, crcTab) != want {
		return e, 1, false
	}
	e.Global = seq.GlobalSeq(binary.LittleEndian.Uint64(body[0:8]))
	e.Source = seq.NodeID(binary.LittleEndian.Uint32(body[8:12]))
	e.Local = seq.LocalSeq(binary.LittleEndian.Uint64(body[12:20]))
	e.WallNS = int64(binary.LittleEndian.Uint64(body[20:28]))
	rl := int(binary.LittleEndian.Uint16(body[28:30]))
	if 30+rl > int(bodyLen) {
		return e, 1, false
	}
	e.Reason = string(body[30 : 30+rl])
	return e, int64(recHdrLen) + int64(bodyLen), true
}

func appendDLQEntry(buf []byte, e DLQEntry) []byte {
	if len(e.Reason) > 1<<15 {
		e.Reason = e.Reason[:1<<15]
	}
	bodyLen := dlqBodyMin + len(e.Reason)
	start := len(buf)
	buf = append(buf, make([]byte, recHdrLen+bodyLen)...)
	body := buf[start+recHdrLen:]
	binary.LittleEndian.PutUint64(body[0:8], uint64(e.Global))
	binary.LittleEndian.PutUint32(body[8:12], uint32(e.Source))
	binary.LittleEndian.PutUint64(body[12:20], uint64(e.Local))
	binary.LittleEndian.PutUint64(body[20:28], uint64(e.WallNS))
	binary.LittleEndian.PutUint16(body[28:30], uint16(len(e.Reason)))
	copy(body[30:], e.Reason)
	binary.LittleEndian.PutUint32(buf[start:], uint32(bodyLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(body, crcTab))
	return buf
}

// Add appends one condemned slot; durable after the next Sync.
func (q *DLQ) Add(e DLQEntry) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f == nil {
		return errors.New("store: add on closed dlq")
	}
	if _, err := q.w.Write(appendDLQEntry(nil, e)); err != nil {
		return err
	}
	q.count++
	q.dirty = true
	q.depth.Set(int64(q.count))
	return nil
}

// Sync flushes and fsyncs pending entries.
func (q *DLQ) Sync() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.syncLocked()
}

func (q *DLQ) syncLocked() error {
	if q.f == nil || !q.dirty {
		return nil
	}
	if err := q.w.Flush(); err != nil {
		return err
	}
	if err := q.f.Sync(); err != nil {
		return err
	}
	q.dirty = false
	return nil
}

// Len reports the number of entries in the queue.
func (q *DLQ) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Cursor reports how many entries have already been replayed.
func (q *DLQ) Cursor() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cursor
}

// Entries reads every entry from disk (flushing pending writes first).
func (q *DLQ) Entries() ([]DLQEntry, error) {
	q.mu.Lock()
	if q.f != nil {
		if err := q.w.Flush(); err != nil {
			q.mu.Unlock()
			return nil, err
		}
	}
	dir := q.dir
	q.mu.Unlock()
	f, err := os.Open(filepath.Join(dir, dlqFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<14)
	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil
	}
	var out []DLQEntry
	for {
		e, _, ok := readDLQEntry(r)
		if !ok {
			return out, nil
		}
		out = append(out, e)
	}
}

// Replay emits every entry past the replay cursor, then durably
// advances the cursor past them, so running a replay twice emits
// nothing the second time. It returns how many entries were emitted.
func (q *DLQ) Replay(fn func(DLQEntry) error) (int, error) {
	ents, err := q.Entries()
	if err != nil {
		return 0, err
	}
	q.mu.Lock()
	cur := q.cursor
	q.mu.Unlock()
	if cur > len(ents) {
		cur = len(ents)
	}
	emitted := 0
	for _, e := range ents[cur:] {
		if err := fn(e); err != nil {
			return emitted, err
		}
		emitted++
	}
	if emitted > 0 {
		if err := q.setCursor(cur + emitted); err != nil {
			return emitted, err
		}
	}
	return emitted, nil
}

func (q *DLQ) setCursor(n int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	tmp := filepath.Join(q.dir, dlqCursor+".tmp")
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%d\n", n)), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(q.dir, dlqCursor)); err != nil {
		return err
	}
	q.cursor = n
	return nil
}

// Purge removes every entry and the replay cursor. The queue stays
// usable: the next Add starts a fresh file.
func (q *DLQ) Purge() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f != nil {
		if err := q.w.Flush(); err != nil {
			return err
		}
		if err := q.f.Close(); err != nil {
			return err
		}
	}
	if err := os.Remove(filepath.Join(q.dir, dlqFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := os.Remove(filepath.Join(q.dir, dlqCursor)); err != nil && !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(filepath.Join(q.dir, dlqFile), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	q.f, q.w = f, bufio.NewWriterSize(f, 1<<14)
	var hdr [segHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], dlqMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], logVersion)
	if _, err := q.w.Write(hdr[:]); err != nil {
		return err
	}
	q.count, q.cursor, q.dirty = 0, 0, true
	q.depth.Set(0)
	return nil
}

// Close flushes, fsyncs, and releases the queue file.
func (q *DLQ) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f == nil {
		return nil
	}
	err := q.syncLocked()
	if cerr := q.f.Close(); err == nil {
		err = cerr
	}
	q.f = nil
	q.w = nil
	return err
}
