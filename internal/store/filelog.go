package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/seq"
	"repro/internal/telemetry"
)

// Telemetry is the log's optional live instrumentation: append and
// fsync latency distributions plus the segment-roll count. All fields
// are nil-safe instruments; the zero value is inert and the append path
// reads the wall clock only when a histogram is attached.
type Telemetry struct {
	AppendSeconds *telemetry.Histogram
	SyncSeconds   *telemetry.Histogram
	SegmentRolls  *telemetry.Counter
}

// FileLog persists the delivered stream as CRC-framed records in
// rolling append-only segments under one directory. Appends go through
// a buffered writer; durability is batched — the caller (the wire
// group's flush timer) invokes Sync on its flush interval, trading a
// bounded window of re-deliverable tail for not paying an fsync per
// message. Recovery scans the segments in order, truncates the first
// torn or corrupt record and discards everything after it, so the log
// always reopens to a consistent prefix of the total order.
//
// On-disk format, per segment (little-endian throughout):
//
//	header:  magic "GLOG" (4B) | version u32
//	record:  bodyLen u32 | crc32c(body) u32 | body
//	body:    global u64 | source u32 | local u64 | payload …
//
// Segment files are named seg-%08d.rlog in creation order; a segment
// rolls once it exceeds SegmentBytes.
type FileLog struct {
	mu      sync.Mutex
	dir     string
	segMax  int64
	f       *os.File
	w       *bufio.Writer
	size    int64
	segIdx  int
	front   seq.GlobalSeq
	recov   seq.GlobalSeq // front as recovered at open, before new appends
	dups    uint64
	dirty   bool
	syncs   uint64
	appends uint64
	tel     Telemetry
}

// SetTelemetry attaches live instruments; safe before first use.
func (l *FileLog) SetTelemetry(t Telemetry) {
	l.mu.Lock()
	l.tel = t
	l.mu.Unlock()
}

const (
	logMagic   = 0x474C4F47 // "GLOG"
	logVersion = 1
	segHdrLen  = 8
	recHdrLen  = 8
	recBodyMin = 8 + 4 + 8
	// recBodyMax bounds a single record body so a corrupt length field
	// cannot drive recovery into a multi-GB allocation.
	recBodyMax = 1 << 26

	// DefaultSegmentBytes rolls segments at 8 MB — small enough that
	// the DLQ CLI and recovery touch bounded files, large enough that
	// a steady 200 Hz stream rolls rarely.
	DefaultSegmentBytes = 8 << 20
)

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// FileLogOptions tune a FileLog; zero values take defaults.
type FileLogOptions struct {
	// SegmentBytes rolls the active segment once it exceeds this size.
	SegmentBytes int64
}

// OpenFileLog opens (creating if needed) the delivery log in dir,
// recovering the durable prefix: every segment is scanned in order,
// and the first torn or corrupt record truncates the log there —
// the rest of that segment and all later segments are discarded.
func OpenFileLog(dir string, opts FileLogOptions) (*FileLog, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &FileLog{dir: dir, segMax: opts.SegmentBytes}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// Scan forward; on the first bad record, truncate that segment at
	// the last good offset and drop every later segment.
	for i, s := range segs {
		good, front, err := scanSegment(filepath.Join(dir, s.name), l.front)
		if err != nil {
			return nil, err
		}
		l.front = front
		l.segIdx = s.idx
		if good >= 0 { // torn/corrupt tail: truncate here, drop the rest
			if err := os.Truncate(filepath.Join(dir, s.name), good); err != nil {
				return nil, err
			}
			for _, later := range segs[i+1:] {
				if err := os.Remove(filepath.Join(dir, later.name)); err != nil {
					return nil, err
				}
			}
			break
		}
	}
	l.recov = l.front
	// Append into the last surviving segment, or start a fresh one. A
	// segment truncated below its own header cannot take appends (they
	// would be discarded by the next recovery) — drop it and roll.
	if l.segIdx > 0 {
		path := filepath.Join(dir, segName(l.segIdx))
		if st, serr := os.Stat(path); serr == nil && st.Size() >= segHdrLen {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			l.f, l.w, l.size = f, bufio.NewWriterSize(f, 1<<16), st.Size()
		} else if err := os.Remove(path); err != nil {
			return nil, err
		}
	}
	if l.f == nil {
		if err := l.roll(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

type segRef struct {
	name string
	idx  int
}

func segName(idx int) string { return fmt.Sprintf("seg-%08d.rlog", idx) }

func listSegments(dir string) ([]segRef, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segRef
	for _, e := range ents {
		var idx int
		if n, _ := fmt.Sscanf(e.Name(), "seg-%08d.rlog", &idx); n == 1 && e.Name() == segName(idx) {
			segs = append(segs, segRef{e.Name(), idx})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].idx < segs[j].idx })
	return segs, nil
}

// scanSegment validates path record by record. It returns the offset
// to truncate at (-1 if the whole segment is sound) and the highest
// global seen; records at or below prevFront (duplicates re-appended
// across a crash window) are skipped, matching Append's dedup rule.
func scanSegment(path string, prevFront seq.GlobalSeq) (truncAt int64, front seq.GlobalSeq, err error) {
	front = prevFront
	f, err := os.Open(path)
	if err != nil {
		return -1, front, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, front, nil // header torn: truncate to empty
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != logMagic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != logVersion {
		return 0, front, nil
	}
	off := int64(segHdrLen)
	for {
		rec, n, ok := readRecord(r)
		if !ok {
			if n == 0 {
				return -1, front, nil // clean EOF
			}
			return off, front, nil // torn or corrupt: truncate here
		}
		off += n
		if rec.Global > front {
			front = rec.Global
		}
	}
}

// readRecord decodes one frame. ok=false with n=0 means clean EOF;
// ok=false with n>0 means a torn or corrupt record was detected.
func readRecord(r *bufio.Reader) (rec Record, n int64, ok bool) {
	var hdr [recHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return rec, 0, false
		}
		return rec, 1, false // partial header: torn
	}
	bodyLen := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if bodyLen < recBodyMin || bodyLen > recBodyMax {
		return rec, 1, false
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return rec, 1, false
	}
	if crc32.Checksum(body, crcTab) != want {
		return rec, 1, false
	}
	rec.Global = seq.GlobalSeq(binary.LittleEndian.Uint64(body[0:8]))
	rec.Source = seq.NodeID(binary.LittleEndian.Uint32(body[8:12]))
	rec.Local = seq.LocalSeq(binary.LittleEndian.Uint64(body[12:20]))
	if bodyLen > recBodyMin {
		rec.Payload = body[recBodyMin:]
	}
	return rec, int64(recHdrLen) + int64(bodyLen), true
}

func appendRecord(buf []byte, r Record) []byte {
	bodyLen := recBodyMin + len(r.Payload)
	start := len(buf)
	buf = append(buf, make([]byte, recHdrLen+bodyLen)...)
	body := buf[start+recHdrLen:]
	binary.LittleEndian.PutUint64(body[0:8], uint64(r.Global))
	binary.LittleEndian.PutUint32(body[8:12], uint32(r.Source))
	binary.LittleEndian.PutUint64(body[12:20], uint64(r.Local))
	copy(body[recBodyMin:], r.Payload)
	binary.LittleEndian.PutUint32(buf[start:], uint32(bodyLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(body, crcTab))
	return buf
}

// roll flushes and fsyncs the active segment and starts the next one.
func (l *FileLog) roll() error {
	if l.f != nil {
		if err := l.w.Flush(); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
	}
	l.segIdx++
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.segIdx)),
		os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], logVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	l.f, l.w, l.size = f, bufio.NewWriterSize(f, 1<<16), segHdrLen
	l.tel.SegmentRolls.Inc()
	return nil
}

// Append implements DeliveryLog. The write lands in the buffer; it is
// durable only after the next Sync (or segment roll).
func (l *FileLog) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("store: append on closed log")
	}
	if r.Global == 0 {
		return fmt.Errorf("store: append global 0")
	}
	if r.Global <= l.front {
		l.dups++
		return nil
	}
	var t0 time.Time
	if l.tel.AppendSeconds != nil {
		t0 = time.Now()
	}
	frame := appendRecord(nil, r)
	if _, err := l.w.Write(frame); err != nil {
		return err
	}
	l.front = r.Global
	l.size += int64(len(frame))
	l.dirty = true
	l.appends++
	if l.size >= l.segMax {
		if err := l.roll(); err != nil {
			return err
		}
	}
	if l.tel.AppendSeconds != nil {
		l.tel.AppendSeconds.ObserveSince(t0)
	}
	return nil
}

// Front implements DeliveryLog.
func (l *FileLog) Front() seq.GlobalSeq {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.front
}

// RecoveredFront is the durable position found at open time, before
// any new appends — the front a restarting member offers in its
// JoinReq.
func (l *FileLog) RecoveredFront() seq.GlobalSeq {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recov
}

// Sync implements DeliveryLog: flush the buffer and fsync the active
// segment. Cheap when nothing was appended since the last call.
func (l *FileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *FileLog) syncLocked() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	var t0 time.Time
	if l.tel.SyncSeconds != nil {
		t0 = time.Now()
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.syncs++
	if l.tel.SyncSeconds != nil {
		l.tel.SyncSeconds.ObserveSince(t0)
	}
	return nil
}

// Replay implements DeliveryLog: flush buffered appends, then walk
// every record on disk in order (skipping cross-segment duplicates).
func (l *FileLog) Replay(fn func(Record) error) error {
	l.mu.Lock()
	if l.f != nil {
		if err := l.w.Flush(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	dir := l.dir
	l.mu.Unlock()
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	var front seq.GlobalSeq
	for _, s := range segs {
		err := walkSegment(filepath.Join(dir, s.name), func(r Record) error {
			if r.Global <= front {
				return nil
			}
			front = r.Global
			return fn(r)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// walkSegment calls fn for every valid record, stopping silently at
// the first torn or corrupt one (recovery semantics).
func walkSegment(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != logMagic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != logVersion {
		return nil
	}
	for {
		rec, _, ok := readRecord(r)
		if !ok {
			return nil
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Duplicates implements DeliveryLog.
func (l *FileLog) Duplicates() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dups
}

// Syncs reports how many fsync batches have been issued (flush-window
// accounting for the durability-cost benchmarks).
func (l *FileLog) Syncs() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// Appends reports how many records were accepted since open.
func (l *FileLog) Appends() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Close implements DeliveryLog: a final Sync, then release the file.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	l.w = nil
	return err
}
