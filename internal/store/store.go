// Package store is the durable delivery plane: a per-member,
// append-only log of the totally ordered stream a ring member has
// delivered, keyed by global sequence number. The wire path appends
// every delivery; on restart the recovered front is offered to the
// coordinator so the member resumes where its disk left off instead
// of rejoining at the cluster's current baseline (see
// internal/wire/member.go). Bodies condemned by the really-lost rule
// are routed to a dead-letter queue (dlq.go) instead of vanishing.
//
// Two implementations share the DeliveryLog interface: MemLog keeps
// the stream in memory (the simulator and in-process tests), FileLog
// persists it as CRC-framed records in rolling segments with batched
// fsync (filelog.go).
package store

import (
	"fmt"
	"sync"

	"repro/internal/seq"
)

// Record is one delivered message as the log stores it: its position
// in the total order plus the (source, local) identity the ordering
// protocol assigned it. Payload may be empty (a Skip-ranged gap the
// member never held a body for is not appended at all; really-lost
// slots go to the DLQ instead).
type Record struct {
	Global  seq.GlobalSeq
	Source  seq.NodeID
	Local   seq.LocalSeq
	Payload []byte
}

// DeliveryLog is the pluggable persistence contract. Appends must be
// strictly increasing in Global; an append at or below Front is a
// duplicate (a replayed delivery after recovery) and is dropped
// silently, which is what makes the wire hook idempotent across
// restarts. Gaps are legal: a member readmitted fresh at a quorum
// baseline skips the range it discarded.
type DeliveryLog interface {
	// Append records one delivery. Duplicate globals (<= Front) are
	// ignored and counted, not errors.
	Append(r Record) error
	// Front returns the highest global ever appended — after Sync,
	// the durable resume position.
	Front() seq.GlobalSeq
	// Sync makes every prior Append durable (no-op for MemLog).
	Sync() error
	// Replay walks the durable records in global order. It reflects
	// appends made since open (flushing buffered writes first).
	Replay(fn func(Record) error) error
	// Duplicates reports how many appends were dropped as duplicates.
	Duplicates() uint64
	Close() error
}

// MemLog is the in-memory DeliveryLog: the reference implementation
// the fault-injection tests compare FileLog against, and the store
// the simulator-facing paths use so the sim stays byte-identical.
type MemLog struct {
	mu    sync.Mutex
	recs  []Record
	front seq.GlobalSeq
	dups  uint64
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements DeliveryLog.
func (l *MemLog) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.Global == 0 {
		return fmt.Errorf("store: append global 0")
	}
	if r.Global <= l.front {
		l.dups++
		return nil
	}
	cp := r
	if len(r.Payload) > 0 {
		cp.Payload = append([]byte(nil), r.Payload...)
	}
	l.recs = append(l.recs, cp)
	l.front = r.Global
	return nil
}

// Front implements DeliveryLog.
func (l *MemLog) Front() seq.GlobalSeq {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.front
}

// Sync implements DeliveryLog (memory is always "durable").
func (l *MemLog) Sync() error { return nil }

// Replay implements DeliveryLog.
func (l *MemLog) Replay(fn func(Record) error) error {
	l.mu.Lock()
	recs := l.recs
	l.mu.Unlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Duplicates implements DeliveryLog.
func (l *MemLog) Duplicates() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dups
}

// Close implements DeliveryLog.
func (l *MemLog) Close() error { return nil }

// Len reports the number of records held.
func (l *MemLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}
