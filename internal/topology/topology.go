// Package topology models the RingNet hierarchy (paper §3): a tree of
// logical rings spanning the Border Router Tier (BRT) and Access Gateway
// Tier (AGT), with Access Proxies (APT) as leaf network entities and
// Mobile Hosts (MHT) attached beneath them.
//
// Each logical ring is a cyclic list of network entities with exactly one
// leader; the leader is the ring's interface to the tier above. Every
// node knows only its possible leader, previous, next, parent, and
// children neighbors — the protocol never needs a global view.
package topology

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// Tier enumerates the four tiers of the hierarchy.
type Tier int

const (
	// TierBR is the Border Router Tier (top; its ring orders messages).
	TierBR Tier = iota
	// TierAG is the Access Gateway Tier.
	TierAG
	// TierAP is the Access Proxy Tier (bottom network entities).
	TierAP
	// TierMH is the Mobile Host Tier.
	TierMH
)

func (t Tier) String() string {
	switch t {
	case TierBR:
		return "BR"
	case TierAG:
		return "AG"
	case TierAP:
		return "AP"
	case TierMH:
		return "MH"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// RingID identifies a logical ring. Zero is reserved.
type RingID uint32

// Node is one network entity's view of the hierarchy: its identity, tier,
// ring membership, and neighbor links (paper §4.1, Data Structure of NEs:
// Current, Leader, Previous, Next, Parent, Children).
type Node struct {
	ID   seq.NodeID
	Tier Tier
	// Ring is the logical ring this node belongs to (0 for APs, which
	// are not organized into rings in the base model).
	Ring RingID
	// Parent is set for ring leaders (their contact in the tier above)
	// and for APs (their access gateway).
	Parent seq.NodeID
	// Children are the nodes in the tier below fed by this node.
	Children []seq.NodeID
	// Candidates are pre-configured fallback contactors: candidate
	// neighbor nodes for joining rings and/or candidate parents
	// (paper §3: "each AP, AG, and BR [has] some knowledge of its
	// candidate contactors").
	Candidates []seq.NodeID
}

// Ring is a logical ring: an ordered cycle of node IDs with one leader.
type Ring struct {
	ID     RingID
	Tier   Tier
	nodes  []seq.NodeID // cyclic successor order
	leader seq.NodeID
}

// Nodes returns the ring's members in successor order starting from the
// leader (a copy).
func (r *Ring) Nodes() []seq.NodeID {
	out := make([]seq.NodeID, 0, len(r.nodes))
	li := r.index(r.leader)
	for i := 0; i < len(r.nodes); i++ {
		out = append(out, r.nodes[(li+i)%len(r.nodes)])
	}
	return out
}

// Len returns the ring size.
func (r *Ring) Len() int { return len(r.nodes) }

// Leader returns the ring leader.
func (r *Ring) Leader() seq.NodeID { return r.leader }

// Contains reports ring membership.
func (r *Ring) Contains(id seq.NodeID) bool { return r.index(id) >= 0 }

func (r *Ring) index(id seq.NodeID) int {
	for i, n := range r.nodes {
		if n == id {
			return i
		}
	}
	return -1
}

// Next returns the successor of id on the ring.
func (r *Ring) Next(id seq.NodeID) (seq.NodeID, bool) {
	i := r.index(id)
	if i < 0 || len(r.nodes) == 0 {
		return seq.None, false
	}
	return r.nodes[(i+1)%len(r.nodes)], true
}

// Prev returns the predecessor of id on the ring.
func (r *Ring) Prev(id seq.NodeID) (seq.NodeID, bool) {
	i := r.index(id)
	if i < 0 || len(r.nodes) == 0 {
		return seq.None, false
	}
	return r.nodes[(i-1+len(r.nodes))%len(r.nodes)], true
}

// Hierarchy is the mutable tree-of-rings. It is a passive data structure:
// the membership protocol mutates it and the multicast protocol queries
// it; neither goroutine-shares it (the DES is single-threaded and the
// concurrent runtime keeps a copy per driver).
type Hierarchy struct {
	rings  map[RingID]*Ring
	nodes  map[seq.NodeID]*Node
	mhs    map[seq.HostID]seq.NodeID // MH → its current AP
	nextID RingID
}

// New returns an empty hierarchy.
func New() *Hierarchy {
	return &Hierarchy{
		rings:  make(map[RingID]*Ring),
		nodes:  make(map[seq.NodeID]*Node),
		mhs:    make(map[seq.HostID]seq.NodeID),
		nextID: 1,
	}
}

// Node returns the node record for id, or nil.
func (h *Hierarchy) Node(id seq.NodeID) *Node { return h.nodes[id] }

// Ring returns the ring record, or nil.
func (h *Hierarchy) Ring(id RingID) *Ring { return h.rings[id] }

// RingOf returns the ring containing node id, or nil.
func (h *Hierarchy) RingOf(id seq.NodeID) *Ring {
	n := h.nodes[id]
	if n == nil || n.Ring == 0 {
		return nil
	}
	return h.rings[n.Ring]
}

// Rings returns all ring IDs in ascending order.
func (h *Hierarchy) Rings() []RingID {
	out := make([]RingID, 0, len(h.rings))
	for id := range h.rings {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodeIDs returns all NE identities in ascending order.
func (h *Hierarchy) NodeIDs() []seq.NodeID {
	out := make([]seq.NodeID, 0, len(h.nodes))
	for id := range h.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopRing returns the BR-tier ring. When several BR rings exist
// (partitioned deployments), the one with the smallest ID is "the" top
// ring; Merge unifies them.
func (h *Hierarchy) TopRing() *Ring {
	var best *Ring
	for _, r := range h.rings {
		if r.Tier != TierBR {
			continue
		}
		if best == nil || r.ID < best.ID {
			best = r
		}
	}
	return best
}

// NewRing creates a ring at a tier from an ordered node list; the first
// node becomes leader. All nodes must already exist at that tier and not
// belong to another ring.
func (h *Hierarchy) NewRing(t Tier, members ...seq.NodeID) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("topology: empty ring")
	}
	for _, m := range members {
		n := h.nodes[m]
		if n == nil {
			return nil, fmt.Errorf("topology: ring member %v unknown", m)
		}
		if n.Tier != t {
			return nil, fmt.Errorf("topology: ring member %v is %v, want %v", m, n.Tier, t)
		}
		if n.Ring != 0 {
			return nil, fmt.Errorf("topology: ring member %v already in ring %d", m, n.Ring)
		}
	}
	r := &Ring{ID: h.nextID, Tier: t, nodes: append([]seq.NodeID(nil), members...), leader: members[0]}
	h.nextID++
	h.rings[r.ID] = r
	for _, m := range members {
		h.nodes[m].Ring = r.ID
	}
	return r, nil
}

// AddNode registers a network entity at a tier. It starts ringless,
// parentless, and childless.
func (h *Hierarchy) AddNode(id seq.NodeID, t Tier) (*Node, error) {
	if id == seq.None {
		return nil, fmt.Errorf("topology: cannot add the None node")
	}
	if _, ok := h.nodes[id]; ok {
		return nil, fmt.Errorf("topology: node %v already exists", id)
	}
	n := &Node{ID: id, Tier: t}
	h.nodes[id] = n
	return n, nil
}

// SetParent links child to parent and records the child on the parent's
// children list. Any previous parent link is removed first.
func (h *Hierarchy) SetParent(child, parent seq.NodeID) error {
	c := h.nodes[child]
	if c == nil {
		return fmt.Errorf("topology: unknown child %v", child)
	}
	if parent != seq.None && h.nodes[parent] == nil {
		return fmt.Errorf("topology: unknown parent %v", parent)
	}
	if c.Parent != seq.None {
		if old := h.nodes[c.Parent]; old != nil {
			old.Children = remove(old.Children, child)
		}
	}
	c.Parent = parent
	if parent != seq.None {
		p := h.nodes[parent]
		p.Children = append(p.Children, child)
	}
	return nil
}

// InsertIntoRing splices id into the ring immediately after neighbor
// (the paper's "join a logical ring through a candidate neighboring
// node").
func (h *Hierarchy) InsertIntoRing(id, neighbor seq.NodeID) error {
	n := h.nodes[id]
	if n == nil {
		return fmt.Errorf("topology: unknown node %v", id)
	}
	if n.Ring != 0 {
		return fmt.Errorf("topology: node %v already in ring %d", id, n.Ring)
	}
	r := h.RingOf(neighbor)
	if r == nil {
		return fmt.Errorf("topology: neighbor %v not in a ring", neighbor)
	}
	if r.Tier != n.Tier {
		return fmt.Errorf("topology: node %v is %v, ring %d is %v", id, n.Tier, r.ID, r.Tier)
	}
	i := r.index(neighbor)
	r.nodes = append(r.nodes, seq.None)
	copy(r.nodes[i+2:], r.nodes[i+1:])
	r.nodes[i+1] = id
	n.Ring = r.ID
	return nil
}

// RemoveFromRing splices id out of its ring (failure repair: the
// previous node's next pointer bypasses it). If id was the leader, the
// next surviving node becomes leader and inherits the old leader's
// parent link. An emptied ring is deleted. It returns the ring and
// whether the removed node was the leader.
func (h *Hierarchy) RemoveFromRing(id seq.NodeID) (*Ring, bool, error) {
	n := h.nodes[id]
	if n == nil {
		return nil, false, fmt.Errorf("topology: unknown node %v", id)
	}
	r := h.RingOf(id)
	if r == nil {
		return nil, false, fmt.Errorf("topology: node %v not in a ring", id)
	}
	wasLeader := r.leader == id
	next, _ := r.Next(id)
	r.nodes = remove(r.nodes, id)
	n.Ring = 0
	if len(r.nodes) == 0 {
		delete(h.rings, r.ID)
		return r, wasLeader, nil
	}
	if wasLeader {
		r.leader = next
		// The new leader inherits the upward link so the ring stays
		// attached to the hierarchy.
		if n.Parent != seq.None {
			if err := h.SetParent(next, n.Parent); err != nil {
				return nil, false, err
			}
			if err := h.SetParent(id, seq.None); err != nil {
				return nil, false, err
			}
		}
	}
	return r, wasLeader, nil
}

// ReformRing rebuilds ring id to contain exactly members, in the given
// cyclic order, led by leader — the bulk mutation behind versioned
// membership epochs (live wire rings): instead of splicing one node at a
// time, a member applies a whole RingUpdate in one step. Every member
// must exist at the ring's tier and be either ringless or already in
// this ring; nodes dropped from the ring become ringless (their records
// survive — see RemoveNode).
func (h *Hierarchy) ReformRing(id RingID, leader seq.NodeID, members ...seq.NodeID) error {
	r := h.rings[id]
	if r == nil {
		return fmt.Errorf("topology: unknown ring %d", id)
	}
	if len(members) == 0 {
		return fmt.Errorf("topology: reform to empty ring %d", id)
	}
	seen := make(map[seq.NodeID]bool, len(members))
	for _, m := range members {
		n := h.nodes[m]
		if n == nil {
			return fmt.Errorf("topology: reform member %v unknown", m)
		}
		if n.Tier != r.Tier {
			return fmt.Errorf("topology: reform member %v is %v, ring %d is %v", m, n.Tier, id, r.Tier)
		}
		if n.Ring != 0 && n.Ring != id {
			return fmt.Errorf("topology: reform member %v already in ring %d", m, n.Ring)
		}
		if seen[m] {
			return fmt.Errorf("topology: reform member %v listed twice", m)
		}
		seen[m] = true
	}
	if !seen[leader] {
		return fmt.Errorf("topology: reform leader %v not a member", leader)
	}
	for _, old := range r.nodes {
		if !seen[old] {
			h.nodes[old].Ring = 0
		}
	}
	r.nodes = append(r.nodes[:0:0], members...)
	r.leader = leader
	for _, m := range members {
		h.nodes[m].Ring = id
	}
	return nil
}

// RemoveNode deletes a ringless node record entirely: its parent link and
// children links are detached first (children become parentless — the
// membership protocol re-parents them via candidates). Nodes still in a
// ring must be spliced out (RemoveFromRing / ReformRing) first.
func (h *Hierarchy) RemoveNode(id seq.NodeID) error {
	n := h.nodes[id]
	if n == nil {
		return fmt.Errorf("topology: unknown node %v", id)
	}
	if n.Ring != 0 {
		return fmt.Errorf("topology: node %v still in ring %d", id, n.Ring)
	}
	if n.Parent != seq.None {
		if err := h.SetParent(id, seq.None); err != nil {
			return err
		}
	}
	for _, c := range append([]seq.NodeID(nil), n.Children...) {
		if err := h.SetParent(c, seq.None); err != nil {
			return err
		}
	}
	delete(h.nodes, id)
	return nil
}

// SetLeader changes a ring's leader. The new leader must be a member.
func (h *Hierarchy) SetLeader(ring RingID, id seq.NodeID) error {
	r := h.rings[ring]
	if r == nil {
		return fmt.Errorf("topology: unknown ring %d", ring)
	}
	if !r.Contains(id) {
		return fmt.Errorf("topology: %v not in ring %d", id, ring)
	}
	r.leader = id
	return nil
}

// Merge concatenates ring b into ring a (two top rings merging, the
// Multiple-Token scenario). Ring a's leader survives; b's members join a
// preserving their cyclic order; ring b is deleted.
func (h *Hierarchy) Merge(a, b RingID) (*Ring, error) {
	ra, rb := h.rings[a], h.rings[b]
	if ra == nil || rb == nil {
		return nil, fmt.Errorf("topology: merge of unknown rings %d,%d", a, b)
	}
	if a == b {
		return ra, nil
	}
	if ra.Tier != rb.Tier {
		return nil, fmt.Errorf("topology: merging rings of different tiers")
	}
	for _, m := range rb.nodes {
		h.nodes[m].Ring = ra.ID
	}
	ra.nodes = append(ra.nodes, rb.nodes...)
	delete(h.rings, b)
	return ra, nil
}

// AttachMH records host as attached to AP ap.
func (h *Hierarchy) AttachMH(host seq.HostID, ap seq.NodeID) error {
	n := h.nodes[ap]
	if n == nil || n.Tier != TierAP {
		return fmt.Errorf("topology: %v is not an AP", ap)
	}
	h.mhs[host] = ap
	return nil
}

// DetachMH removes host. It returns its former AP.
func (h *Hierarchy) DetachMH(host seq.HostID) seq.NodeID {
	ap := h.mhs[host]
	delete(h.mhs, host)
	return ap
}

// APOf returns the AP a host is attached to (None if unattached).
func (h *Hierarchy) APOf(host seq.HostID) seq.NodeID { return h.mhs[host] }

// HostsAt returns the hosts attached to ap, ascending.
func (h *Hierarchy) HostsAt(ap seq.NodeID) []seq.HostID {
	var out []seq.HostID
	for m, a := range h.mhs {
		if a == ap {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Hosts returns the number of attached MHs.
func (h *Hierarchy) Hosts() int { return len(h.mhs) }

func remove(s []seq.NodeID, id seq.NodeID) []seq.NodeID {
	out := s[:0]
	for _, v := range s {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}
