package topology

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func mustAdd(t *testing.T, h *Hierarchy, id seq.NodeID, tier Tier) {
	t.Helper()
	if _, err := h.AddNode(id, tier); err != nil {
		t.Fatal(err)
	}
}

func TestAddNodeErrors(t *testing.T) {
	h := New()
	mustAdd(t, h, 1, TierBR)
	if _, err := h.AddNode(1, TierBR); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if _, err := h.AddNode(seq.None, TierBR); err == nil {
		t.Fatal("None add accepted")
	}
}

func TestRingCycle(t *testing.T) {
	h := New()
	for i := seq.NodeID(1); i <= 4; i++ {
		mustAdd(t, h, i, TierBR)
	}
	r, err := h.NewRing(TierBR, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Leader() != 1 || r.Len() != 4 {
		t.Fatalf("ring %+v", r)
	}
	// Walk next pointers: must visit all nodes and return to start.
	cur := seq.NodeID(1)
	visited := map[seq.NodeID]bool{}
	for i := 0; i < 4; i++ {
		visited[cur] = true
		nx, ok := r.Next(cur)
		if !ok {
			t.Fatal("Next failed")
		}
		cur = nx
	}
	if cur != 1 || len(visited) != 4 {
		t.Fatalf("cycle broken: back at %v, visited %d", cur, len(visited))
	}
	// Prev is the inverse of Next.
	for _, id := range r.Nodes() {
		nx, _ := r.Next(id)
		pv, _ := r.Prev(nx)
		if pv != id {
			t.Fatalf("Prev(Next(%v)) = %v", id, pv)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRingErrors(t *testing.T) {
	h := New()
	mustAdd(t, h, 1, TierBR)
	mustAdd(t, h, 2, TierAG)
	if _, err := h.NewRing(TierBR); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := h.NewRing(TierBR, 99); err == nil {
		t.Fatal("unknown member accepted")
	}
	if _, err := h.NewRing(TierBR, 2); err == nil {
		t.Fatal("wrong-tier member accepted")
	}
	if _, err := h.NewRing(TierBR, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.NewRing(TierBR, 1); err == nil {
		t.Fatal("double ring membership accepted")
	}
}

func TestInsertIntoRing(t *testing.T) {
	h := New()
	for i := seq.NodeID(1); i <= 3; i++ {
		mustAdd(t, h, i, TierBR)
	}
	if _, err := h.NewRing(TierBR, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := h.InsertIntoRing(3, 1); err != nil {
		t.Fatal(err)
	}
	r := h.RingOf(3)
	nx, _ := r.Next(1)
	if nx != 3 {
		t.Fatalf("inserted node not after neighbor: next(1)=%v", nx)
	}
	nx, _ = r.Next(3)
	if nx != 2 {
		t.Fatalf("splice broken: next(3)=%v", nx)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertIntoRingErrors(t *testing.T) {
	h := New()
	mustAdd(t, h, 1, TierBR)
	mustAdd(t, h, 2, TierBR)
	mustAdd(t, h, 3, TierAG)
	if _, err := h.NewRing(TierBR, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.InsertIntoRing(99, 1); err == nil {
		t.Fatal("unknown node inserted")
	}
	if err := h.InsertIntoRing(2, 99); err == nil {
		t.Fatal("insert after non-ring neighbor")
	}
	if err := h.InsertIntoRing(3, 1); err == nil {
		t.Fatal("cross-tier insert accepted")
	}
	if err := h.InsertIntoRing(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.InsertIntoRing(2, 1); err == nil {
		t.Fatal("double insert accepted")
	}
}

func TestRemoveFromRingBypass(t *testing.T) {
	h := New()
	for i := seq.NodeID(1); i <= 3; i++ {
		mustAdd(t, h, i, TierBR)
	}
	if _, err := h.NewRing(TierBR, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	r, wasLeader, err := h.RemoveFromRing(2)
	if err != nil || wasLeader {
		t.Fatalf("remove: %v %v", wasLeader, err)
	}
	nx, _ := r.Next(1)
	if nx != 3 {
		t.Fatalf("bypass failed: next(1)=%v", nx)
	}
	if h.Node(2).Ring != 0 {
		t.Fatal("removed node still claims ring")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveLeaderPromotesNextAndInheritsParent(t *testing.T) {
	h := New()
	mustAdd(t, h, 10, TierBR)
	if _, err := h.NewRing(TierBR, 10); err != nil {
		t.Fatal(err)
	}
	for i := seq.NodeID(1); i <= 3; i++ {
		mustAdd(t, h, i, TierAG)
	}
	if _, err := h.NewRing(TierAG, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := h.SetParent(1, 10); err != nil {
		t.Fatal(err)
	}
	r, wasLeader, err := h.RemoveFromRing(1)
	if err != nil || !wasLeader {
		t.Fatalf("remove leader: %v %v", wasLeader, err)
	}
	if r.Leader() != 2 {
		t.Fatalf("new leader %v, want 2", r.Leader())
	}
	if h.Node(2).Parent != 10 {
		t.Fatalf("parent not inherited: %v", h.Node(2).Parent)
	}
	if h.Node(1).Parent != seq.None {
		t.Fatal("old leader keeps parent")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveLastMemberDeletesRing(t *testing.T) {
	h := New()
	mustAdd(t, h, 1, TierBR)
	r, err := h.NewRing(TierBR, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.RemoveFromRing(1); err != nil {
		t.Fatal(err)
	}
	if h.Ring(r.ID) != nil {
		t.Fatal("empty ring not deleted")
	}
}

func TestSetLeader(t *testing.T) {
	h := New()
	for i := seq.NodeID(1); i <= 2; i++ {
		mustAdd(t, h, i, TierBR)
	}
	r, _ := h.NewRing(TierBR, 1, 2)
	if err := h.SetLeader(r.ID, 2); err != nil {
		t.Fatal(err)
	}
	if r.Leader() != 2 {
		t.Fatal("leader not changed")
	}
	if err := h.SetLeader(r.ID, 99); err == nil {
		t.Fatal("non-member leader accepted")
	}
	if err := h.SetLeader(999, 1); err == nil {
		t.Fatal("unknown ring accepted")
	}
}

func TestMergeRings(t *testing.T) {
	h := New()
	for i := seq.NodeID(1); i <= 6; i++ {
		mustAdd(t, h, i, TierBR)
	}
	ra, _ := h.NewRing(TierBR, 1, 2, 3)
	rb, _ := h.NewRing(TierBR, 4, 5, 6)
	merged, err := h.Merge(ra.ID, rb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 6 || merged.Leader() != 1 {
		t.Fatalf("merged %+v", merged)
	}
	if h.Ring(rb.ID) != nil {
		t.Fatal("ring b survives")
	}
	for i := seq.NodeID(4); i <= 6; i++ {
		if h.Node(i).Ring != ra.ID {
			t.Fatalf("node %v ring = %d", i, h.Node(i).Ring)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Self-merge is a no-op.
	if _, err := h.Merge(ra.ID, ra.ID); err != nil {
		t.Fatal(err)
	}
}

func TestMergeErrors(t *testing.T) {
	h := New()
	mustAdd(t, h, 1, TierBR)
	mustAdd(t, h, 2, TierAG)
	ra, _ := h.NewRing(TierBR, 1)
	rb, _ := h.NewRing(TierAG, 2)
	if _, err := h.Merge(ra.ID, 999); err == nil {
		t.Fatal("merge with unknown ring")
	}
	if _, err := h.Merge(ra.ID, rb.ID); err == nil {
		t.Fatal("cross-tier merge accepted")
	}
}

func TestMHAttachment(t *testing.T) {
	h := New()
	mustAdd(t, h, 1, TierAP)
	mustAdd(t, h, 2, TierAG)
	if err := h.AttachMH(7, 2); err == nil {
		t.Fatal("attach to non-AP accepted")
	}
	if err := h.AttachMH(7, 1); err != nil {
		t.Fatal(err)
	}
	if h.APOf(7) != 1 || h.Hosts() != 1 {
		t.Fatal("APOf/Hosts")
	}
	hosts := h.HostsAt(1)
	if len(hosts) != 1 || hosts[0] != 7 {
		t.Fatalf("HostsAt = %v", hosts)
	}
	if ap := h.DetachMH(7); ap != 1 {
		t.Fatalf("DetachMH = %v", ap)
	}
	if h.APOf(7) != seq.None {
		t.Fatal("host survives detach")
	}
}

func TestNeighborsView(t *testing.T) {
	b, err := Build(Spec{BRs: 3, AGRings: 1, AGSize: 3, APsPerAG: 1, MHsPerAP: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := b.H
	// A BR in the top ring.
	v, err := h.Neighbors(b.BRs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsTop || v.Tier != TierBR {
		t.Fatalf("BR view %+v", v)
	}
	if v.Next == seq.None || v.Previous == seq.None {
		t.Fatal("BR missing ring neighbors")
	}
	// AG ring leader has parent BR and is leader.
	agLeader := h.Ring(b.AGRing[0]).Leader()
	v, err = h.Neighbors(agLeader)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsLeader || v.IsTop || v.Parent == seq.None {
		t.Fatalf("AG leader view %+v", v)
	}
	// AP has no ring but a parent and children (MH handled separately).
	v, err = h.Neighbors(b.APs[0])
	if err != nil {
		t.Fatal(err)
	}
	if v.Leader != seq.None || v.Next != seq.None || v.Parent == seq.None {
		t.Fatalf("AP view %+v", v)
	}
	if _, err := h.Neighbors(9999); err == nil {
		t.Fatal("unknown node view accepted")
	}
}

func TestBuildSpecCounts(t *testing.T) {
	s := Spec{BRs: 3, AGRings: 2, AGSize: 3, APsPerAG: 2, MHsPerAP: 4}
	b, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.BRs) != 3 || len(b.AGs) != 6 || len(b.APs) != 12 || len(b.Hosts) != 48 {
		t.Fatalf("counts: %d BR %d AG %d AP %d MH", len(b.BRs), len(b.AGs), len(b.APs), len(b.Hosts))
	}
	if err := b.H.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.H.TopRing() == nil || b.H.TopRing().Len() != 3 {
		t.Fatal("top ring wrong")
	}
	// Each AG ring leader must have a BR parent.
	for _, rid := range b.AGRing {
		leader := b.H.Ring(rid).Leader()
		p := b.H.Node(leader).Parent
		if b.H.Node(p).Tier != TierBR {
			t.Fatalf("AG ring %d leader parent %v not BR", rid, p)
		}
	}
	// Candidates configured for AG leaders.
	if len(b.H.Node(b.H.Ring(b.AGRing[0]).Leader()).Candidates) != 2 {
		t.Fatal("AG leader candidates missing")
	}
}

func TestBuildInvalidSpec(t *testing.T) {
	if _, err := Build(Spec{BRs: 0}); err == nil {
		t.Fatal("zero BRs accepted")
	}
	if _, err := Build(Spec{BRs: 1, AGRings: -1}); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestFigure1Topology(t *testing.T) {
	b, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	h := b.H
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.TopRing().Len() != 3 {
		t.Fatalf("top ring %d, want 3 BRs", h.TopRing().Len())
	}
	agRings := 0
	for _, rid := range h.Rings() {
		if h.Ring(rid).Tier == TierAG {
			agRings++
			if h.Ring(rid).Len() != 3 {
				t.Fatalf("AG ring %d size %d, want 3", rid, h.Ring(rid).Len())
			}
		}
	}
	if agRings != 3 {
		t.Fatalf("%d AG rings, want 3", agRings)
	}
	if len(b.APs) != 12 {
		t.Fatalf("%d APs, want 12", len(b.APs))
	}
	if h.Hosts() != 4 {
		t.Fatalf("%d MHs, want 4", h.Hosts())
	}
	out := h.Format()
	if !strings.Contains(out, "BR-ring") || !strings.Contains(out, "AG-ring") {
		t.Fatalf("Format output:\n%s", out)
	}
}

func TestTierString(t *testing.T) {
	if TierBR.String() != "BR" || TierMH.String() != "MH" {
		t.Fatal("tier strings")
	}
	if !strings.Contains(Tier(9).String(), "9") {
		t.Fatal("unknown tier string")
	}
}

func TestSetParentRelink(t *testing.T) {
	h := New()
	mustAdd(t, h, 1, TierAG)
	mustAdd(t, h, 2, TierAG)
	mustAdd(t, h, 3, TierAP)
	if err := h.SetParent(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.SetParent(3, 2); err != nil {
		t.Fatal(err)
	}
	if len(h.Node(1).Children) != 0 {
		t.Fatal("old parent keeps child")
	}
	if len(h.Node(2).Children) != 1 {
		t.Fatal("new parent missing child")
	}
	if err := h.SetParent(3, seq.None); err != nil {
		t.Fatal(err)
	}
	if len(h.Node(2).Children) != 0 {
		t.Fatal("None parent keeps child")
	}
	if err := h.SetParent(99, 1); err == nil {
		t.Fatal("unknown child accepted")
	}
	if err := h.SetParent(3, 99); err == nil {
		t.Fatal("unknown parent accepted")
	}
}

// Property: random insert/remove sequences keep ring invariants.
func TestQuickRingChurn(t *testing.T) {
	f := func(ops []uint8) bool {
		h := New()
		for i := seq.NodeID(1); i <= 20; i++ {
			if _, err := h.AddNode(i, TierBR); err != nil {
				return false
			}
		}
		if _, err := h.NewRing(TierBR, 1, 2); err != nil {
			return false
		}
		inRing := map[seq.NodeID]bool{1: true, 2: true}
		nextFree := seq.NodeID(3)
		for _, op := range ops {
			if op%2 == 0 && nextFree <= 20 {
				// Insert after a random in-ring node.
				var anchor seq.NodeID
				for id := range inRing {
					anchor = id
					break
				}
				if err := h.InsertIntoRing(nextFree, anchor); err != nil {
					return false
				}
				inRing[nextFree] = true
				nextFree++
			} else if len(inRing) > 1 {
				var victim seq.NodeID
				for id := range inRing {
					victim = id
					break
				}
				if _, _, err := h.RemoveFromRing(victim); err != nil {
					return false
				}
				delete(inRing, victim)
			}
			if err := h.Validate(); err != nil {
				return false
			}
			// Ring remains a single cycle covering inRing.
			var anyR *Ring
			for id := range inRing {
				anyR = h.RingOf(id)
				break
			}
			if anyR == nil || anyR.Len() != len(inRing) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDeepSubTiers(t *testing.T) {
	// 2 BRs, 2 levels of AG rings of size 2: level 1 has 2 rings (one
	// per BR) = 4 AGs; level 2 has 4 rings (one per level-1 AG) = 8
	// AGs; 8 leaf AGs x 1 AP x 1 MH.
	b, err := BuildDeep(2, 2, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.H.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.AGs) != 4+8 {
		t.Fatalf("AGs = %d, want 12", len(b.AGs))
	}
	if len(b.AGRing) != 2+4 {
		t.Fatalf("AG rings = %d, want 6", len(b.AGRing))
	}
	if len(b.APs) != 8 || b.H.Hosts() != 8 {
		t.Fatalf("APs=%d hosts=%d", len(b.APs), b.H.Hosts())
	}
	// Level-2 ring leaders have equal-tier parents in distinct rings.
	deepLeader := b.H.Ring(b.AGRing[len(b.AGRing)-1]).Leader()
	p := b.H.Node(deepLeader).Parent
	if b.H.Node(p).Tier != TierAG {
		t.Fatalf("deep leader parent tier = %v, want AG", b.H.Node(p).Tier)
	}
	if b.H.Node(p).Ring == b.H.Node(deepLeader).Ring {
		t.Fatal("sub-ring leader parented inside its own ring")
	}
}

func TestBuildDeepInvalid(t *testing.T) {
	if _, err := BuildDeep(0, 1, 1, 1, 1); err == nil {
		t.Fatal("invalid deep spec accepted")
	}
}

func TestReformRing(t *testing.T) {
	h := New()
	for id := seq.NodeID(1); id <= 5; id++ {
		if _, err := h.AddNode(id, TierBR); err != nil {
			t.Fatal(err)
		}
	}
	r, err := h.NewRing(TierBR, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// One epoch: drop 2, add 5, keep the leader.
	if err := h.ReformRing(r.ID, 1, 1, 3, 4, 5); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Node(2).Ring != 0 {
		t.Fatalf("dropped node still in ring %d", h.Node(2).Ring)
	}
	if h.Node(5).Ring != r.ID {
		t.Fatal("added node not in ring")
	}
	if nx, _ := r.Next(4); nx != 5 {
		t.Fatalf("Next(4) = %v, want 5", nx)
	}
	if nx, _ := r.Next(5); nx != 1 {
		t.Fatalf("Next(5) = %v, want 1 (cycle)", nx)
	}
	// Leader change through reform (old leader failed).
	if err := h.ReformRing(r.ID, 3, 3, 4, 5); err != nil {
		t.Fatal(err)
	}
	if r.Leader() != 3 || h.Node(1).Ring != 0 {
		t.Fatalf("leader %v, node1 ring %d", r.Leader(), h.Node(1).Ring)
	}

	// Error cases: unknown member, leader outside the list, duplicate,
	// member of another ring, empty reform.
	if err := h.ReformRing(r.ID, 3, 3, 99); err == nil {
		t.Fatal("unknown member accepted")
	}
	if err := h.ReformRing(r.ID, 1, 3, 4); err == nil {
		t.Fatal("outside leader accepted")
	}
	if err := h.ReformRing(r.ID, 3, 3, 3); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := h.NewRing(TierBR, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := h.ReformRing(r.ID, 3, 3, 1); err == nil {
		t.Fatal("member of another ring accepted")
	}
	if err := h.ReformRing(r.ID, 3); err == nil {
		t.Fatal("empty reform accepted")
	}
}

func TestRemoveNode(t *testing.T) {
	h := New()
	for id := seq.NodeID(1); id <= 3; id++ {
		if _, err := h.AddNode(id, TierBR); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.AddNode(10, TierAG); err != nil {
		t.Fatal(err)
	}
	r, err := h.NewRing(TierBR, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetParent(10, 2); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveNode(2); err == nil {
		t.Fatal("removed a node still in its ring")
	}
	if _, _, err := h.RemoveFromRing(2); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	if h.Node(2) != nil {
		t.Fatal("node record survived RemoveNode")
	}
	if h.Node(10).Parent != seq.None {
		t.Fatalf("orphan child still parented to %v", h.Node(10).Parent)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveNode(2); err == nil {
		t.Fatal("double remove accepted")
	}
	_ = r
}
