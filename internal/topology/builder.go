package topology

import (
	"fmt"
	"strings"

	"repro/internal/seq"
)

// Neighbors is a node's complete local view (paper §4.1): everything the
// protocol at that node is allowed to know about the hierarchy.
type Neighbors struct {
	Current  seq.NodeID
	Leader   seq.NodeID
	Previous seq.NodeID
	Next     seq.NodeID
	Parent   seq.NodeID
	Children []seq.NodeID
	IsLeader bool
	IsTop    bool // member of the top (BR) ring
	Tier     Tier
}

// Neighbors computes the local view of id.
func (h *Hierarchy) Neighbors(id seq.NodeID) (Neighbors, error) {
	n := h.nodes[id]
	if n == nil {
		return Neighbors{}, fmt.Errorf("topology: unknown node %v", id)
	}
	v := Neighbors{
		Current:  id,
		Parent:   n.Parent,
		Children: append([]seq.NodeID(nil), n.Children...),
		Tier:     n.Tier,
	}
	if r := h.RingOf(id); r != nil {
		v.Leader = r.Leader()
		v.IsLeader = r.Leader() == id
		v.IsTop = r.Tier == TierBR
		v.Next, _ = r.Next(id)
		v.Previous, _ = r.Prev(id)
	}
	return v, nil
}

// Spec describes a regular RingNet deployment for the builder: one top BR
// ring, AGRings rings of AGSize gateways each (each AG ring's leader
// parented to one BR, round-robin), APsPerAG access proxies per gateway,
// and MHsPerAP mobile hosts per proxy.
type Spec struct {
	BRs      int
	AGRings  int
	AGSize   int
	APsPerAG int
	MHsPerAP int
}

// Built is the result of Build: the hierarchy plus the identity ranges it
// allocated, for wiring the network substrate.
type Built struct {
	H      *Hierarchy
	Top    *Ring
	BRs    []seq.NodeID
	AGs    []seq.NodeID // all gateways, ring-major order
	AGRing []RingID     // per AG-ring ring IDs
	APs    []seq.NodeID
	Hosts  []seq.HostID
}

// Build constructs the hierarchy described by s with dense identities:
// BRs first, then AGs, then APs; hosts numbered from 1.
func Build(s Spec) (*Built, error) {
	if s.BRs < 1 || s.AGRings < 0 || s.AGSize < 0 || s.APsPerAG < 0 || s.MHsPerAP < 0 {
		return nil, fmt.Errorf("topology: invalid spec %+v", s)
	}
	h := New()
	b := &Built{H: h}
	next := seq.NodeID(1)
	alloc := func() seq.NodeID { id := next; next++; return id }

	for i := 0; i < s.BRs; i++ {
		id := alloc()
		if _, err := h.AddNode(id, TierBR); err != nil {
			return nil, err
		}
		b.BRs = append(b.BRs, id)
	}
	top, err := h.NewRing(TierBR, b.BRs...)
	if err != nil {
		return nil, err
	}
	b.Top = top

	for ri := 0; ri < s.AGRings; ri++ {
		var members []seq.NodeID
		for i := 0; i < s.AGSize; i++ {
			id := alloc()
			if _, err := h.AddNode(id, TierAG); err != nil {
				return nil, err
			}
			members = append(members, id)
			b.AGs = append(b.AGs, id)
		}
		if len(members) == 0 {
			continue
		}
		r, err := h.NewRing(TierAG, members...)
		if err != nil {
			return nil, err
		}
		b.AGRing = append(b.AGRing, r.ID)
		// The ring leader attaches to a BR, round-robin across BRs.
		parent := b.BRs[ri%len(b.BRs)]
		if err := h.SetParent(r.Leader(), parent); err != nil {
			return nil, err
		}
		// Candidate parents: the other BRs (static fallback config,
		// paper Remark 2).
		for _, br := range b.BRs {
			if br != parent {
				h.Node(r.Leader()).Candidates = append(h.Node(r.Leader()).Candidates, br)
			}
		}
	}

	for _, ag := range b.AGs {
		for i := 0; i < s.APsPerAG; i++ {
			id := alloc()
			if _, err := h.AddNode(id, TierAP); err != nil {
				return nil, err
			}
			if err := h.SetParent(id, ag); err != nil {
				return nil, err
			}
			b.APs = append(b.APs, id)
		}
	}
	// Candidate AGs for each AP: its parent's ring neighbors.
	for _, ap := range b.APs {
		n := h.Node(ap)
		if r := h.RingOf(n.Parent); r != nil {
			if nx, ok := r.Next(n.Parent); ok && nx != n.Parent {
				n.Candidates = append(n.Candidates, nx)
			}
		}
	}

	host := seq.HostID(1)
	for _, ap := range b.APs {
		for i := 0; i < s.MHsPerAP; i++ {
			if err := h.AttachMH(host, ap); err != nil {
				return nil, err
			}
			b.Hosts = append(b.Hosts, host)
			host++
		}
	}
	return b, nil
}

// BuildDeep constructs a hierarchy with nested gateway sub-tiers
// (paper §3: "more complicated scenarios where sub-tiers of the AGT and
// BRT tiers are allowed"): one BR ring, then depth levels of AG rings —
// every gateway of a level-i ring parents one level-(i+1) ring through
// that ring's leader — with APs and MHs under the deepest gateways.
func BuildDeep(brs, depth, ringSize, apsPerLeaf, mhsPerAP int) (*Built, error) {
	if brs < 1 || depth < 1 || ringSize < 1 || apsPerLeaf < 0 || mhsPerAP < 0 {
		return nil, fmt.Errorf("topology: invalid deep spec")
	}
	h := New()
	b := &Built{H: h}
	next := seq.NodeID(1)
	alloc := func() seq.NodeID { id := next; next++; return id }

	for i := 0; i < brs; i++ {
		id := alloc()
		if _, err := h.AddNode(id, TierBR); err != nil {
			return nil, err
		}
		b.BRs = append(b.BRs, id)
	}
	top, err := h.NewRing(TierBR, b.BRs...)
	if err != nil {
		return nil, err
	}
	b.Top = top

	// parents at the current level whose members each sprout one ring
	// at the next level.
	parents := b.BRs
	var leaves []seq.NodeID
	for level := 0; level < depth; level++ {
		var nextParents []seq.NodeID
		for _, p := range parents {
			var members []seq.NodeID
			for i := 0; i < ringSize; i++ {
				id := alloc()
				if _, err := h.AddNode(id, TierAG); err != nil {
					return nil, err
				}
				members = append(members, id)
				b.AGs = append(b.AGs, id)
			}
			r, err := h.NewRing(TierAG, members...)
			if err != nil {
				return nil, err
			}
			b.AGRing = append(b.AGRing, r.ID)
			if err := h.SetParent(r.Leader(), p); err != nil {
				return nil, err
			}
			nextParents = append(nextParents, members...)
		}
		parents = nextParents
		leaves = nextParents
	}

	for _, ag := range leaves {
		for i := 0; i < apsPerLeaf; i++ {
			id := alloc()
			if _, err := h.AddNode(id, TierAP); err != nil {
				return nil, err
			}
			if err := h.SetParent(id, ag); err != nil {
				return nil, err
			}
			b.APs = append(b.APs, id)
		}
	}
	host := seq.HostID(1)
	for _, ap := range b.APs {
		for i := 0; i < mhsPerAP; i++ {
			if err := h.AttachMH(host, ap); err != nil {
				return nil, err
			}
			b.Hosts = append(b.Hosts, host)
			host++
		}
	}
	return b, nil
}

// Figure1 builds the exact topology of the paper's Figure 1: one BR ring
// of 3 border routers, three AG rings of 3 gateways each, 12 access
// proxies (4 per AG ring, spread across its gateways), and 4 mobile
// hosts (laptop, PDA, mobile phone, video phone) on one AP.
func Figure1() (*Built, error) {
	b, err := Build(Spec{BRs: 3, AGRings: 3, AGSize: 3, APsPerAG: 0})
	if err != nil {
		return nil, err
	}
	h := b.H
	next := seq.NodeID(1 + 3 + 9)
	// 12 APs: 4 per AG ring, parented to gateways round-robin within
	// the ring.
	for ri := 0; ri < 3; ri++ {
		ring := h.Ring(b.AGRing[ri])
		ags := ring.Nodes()
		for i := 0; i < 4; i++ {
			id := next
			next++
			if _, err := h.AddNode(id, TierAP); err != nil {
				return nil, err
			}
			if err := h.SetParent(id, ags[i%len(ags)]); err != nil {
				return nil, err
			}
			b.APs = append(b.APs, id)
		}
	}
	// Four device-class MHs on the first AP.
	for host := seq.HostID(1); host <= 4; host++ {
		if err := h.AttachMH(host, b.APs[0]); err != nil {
			return nil, err
		}
		b.Hosts = append(b.Hosts, host)
	}
	return b, nil
}

// Validate checks the structural invariants of the hierarchy:
//   - every ring is a non-empty cycle of distinct nodes of its tier with
//     exactly one leader who is a member;
//   - every node's Ring field matches the ring that contains it;
//   - ring leaders (except the top ring's members) have a live parent in
//     the tier above;
//   - children lists and parent pointers agree, with no duplicates;
//   - every attached MH sits on an AP.
func (h *Hierarchy) Validate() error {
	seen := make(map[seq.NodeID]RingID)
	for id, r := range h.rings {
		if len(r.nodes) == 0 {
			return fmt.Errorf("topology: ring %d empty", id)
		}
		if !r.Contains(r.leader) {
			return fmt.Errorf("topology: ring %d leader %v not a member", id, r.leader)
		}
		for _, m := range r.nodes {
			if prev, dup := seen[m]; dup {
				return fmt.Errorf("topology: node %v in rings %d and %d", m, prev, id)
			}
			seen[m] = id
			n := h.nodes[m]
			if n == nil {
				return fmt.Errorf("topology: ring %d contains unknown node %v", id, m)
			}
			if n.Ring != id {
				return fmt.Errorf("topology: node %v Ring=%d but found in ring %d", m, n.Ring, id)
			}
			if n.Tier != r.Tier {
				return fmt.Errorf("topology: node %v tier %v in %v ring %d", m, n.Tier, r.Tier, id)
			}
		}
		if r.Tier != TierBR {
			leader := h.nodes[r.leader]
			if leader.Parent == seq.None {
				return fmt.Errorf("topology: ring %d leader %v has no parent", id, r.leader)
			}
		}
	}
	for id, n := range h.nodes {
		if n.Ring != 0 {
			r := h.rings[n.Ring]
			if r == nil || !r.Contains(id) {
				return fmt.Errorf("topology: node %v claims ring %d", id, n.Ring)
			}
		}
		if n.Parent != seq.None {
			p := h.nodes[n.Parent]
			if p == nil {
				return fmt.Errorf("topology: node %v has unknown parent %v", id, n.Parent)
			}
			if !contains(p.Children, id) {
				return fmt.Errorf("topology: node %v missing from parent %v children", id, n.Parent)
			}
			if p.Tier >= n.Tier && !(p.Tier == n.Tier && p.Ring != n.Ring) {
				// Parents normally live in the tier above. Equal-tier
				// parents appear only in sub-tier configurations (paper
				// §3 "sub-tiers of the AGT and BRT tiers"), which must
				// use distinct rings.
				if p.Tier != n.Tier {
					return fmt.Errorf("topology: node %v (%v) has parent %v (%v) below it", id, n.Tier, n.Parent, p.Tier)
				}
			}
		}
		dup := make(map[seq.NodeID]bool)
		for _, c := range n.Children {
			if dup[c] {
				return fmt.Errorf("topology: node %v lists child %v twice", id, c)
			}
			dup[c] = true
			cn := h.nodes[c]
			if cn == nil {
				return fmt.Errorf("topology: node %v lists unknown child %v", id, c)
			}
			if cn.Parent != id {
				return fmt.Errorf("topology: child %v of %v points to parent %v", c, id, cn.Parent)
			}
		}
	}
	for host, ap := range h.mhs {
		n := h.nodes[ap]
		if n == nil || n.Tier != TierAP {
			return fmt.Errorf("topology: host %v attached to non-AP %v", host, ap)
		}
	}
	return nil
}

// Format renders the hierarchy as an indented tree-of-rings (top ring
// first), for logs and the Figure-1 experiment.
func (h *Hierarchy) Format() string {
	var sb strings.Builder
	top := h.TopRing()
	if top == nil {
		return "(no top ring)\n"
	}
	h.formatRing(&sb, top, 0)
	return sb.String()
}

func (h *Hierarchy) formatRing(sb *strings.Builder, r *Ring, depth int) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(sb, "%s%v-ring %d: ", ind, r.Tier, r.ID)
	for i, m := range r.Nodes() {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		fmt.Fprintf(sb, "%v", m)
		if m == r.Leader() {
			sb.WriteString("*")
		}
	}
	sb.WriteString("\n")
	for _, m := range r.Nodes() {
		for _, c := range h.nodes[m].Children {
			cn := h.nodes[c]
			if cn.Ring != 0 {
				if cr := h.rings[cn.Ring]; cr != nil && cr.Leader() == c {
					h.formatRing(sb, cr, depth+1)
					continue
				}
			}
			hosts := h.HostsAt(c)
			fmt.Fprintf(sb, "%s  %v %v (parent %v, %d MHs)\n", ind, cn.Tier, c, m, len(hosts))
		}
	}
}

func contains(s []seq.NodeID, id seq.NodeID) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}
